"""Resent session ends must be acked idempotently (regression).

Found by the scenario matrix's partition cells: the server processed a
session end, popped the session, and sent the ack — which a partition
blackout dropped.  The client's resent end then reached a server that
no longer knew the session; ``session_for`` created a fresh one whose
``next_expected_seq`` was 0, classified the resend (seq >= 1) as
out-of-order, and dropped it silently.  The client resends a final end
forever: a permanent deadlock.  An end request for an unknown session
with seq > 0 can only be such a resend (the client is strictly
sequential, so seqs 0..seq-1 were acked and the session existed) — the
server must ack it again without resurrecting the session.
"""

from repro.core import RecoveryConfig, ServiceDomainConfig
from repro.core.client import EndClient
from repro.core.msp import MiddlewareServer
from repro.net import Network
from repro.sim import RngRegistry, Simulator


def echo(ctx, argument):
    yield from ctx.compute(0.1)
    return argument


def build():
    sim = Simulator()
    rng = RngRegistry(0)
    net = Network(sim, rng=rng)
    msp = MiddlewareServer(
        sim, net, "server", ServiceDomainConfig(),
        config=RecoveryConfig(), rng=rng,
    )
    msp.register_service("echo", echo)
    client = EndClient(sim, net, "client")
    return sim, msp, client


def run_session_and_reend(sim, msp, client):
    """One normal session, then replay its final end as if the first
    ack had been lost; returns the re-end's driver process."""
    session = client.open_session("server")
    done = {}

    def driver():
        yield 1.0
        yield from session.call("echo", b"x")
        yield from session.end()
        assert session.id not in msp.sessions
        # Model the lost ack: rewind the client's sequence cursor and
        # rebind the reply port, then resend the identical end request.
        session.next_seq -= 1
        session._inbox = client.node.bind(session._reply_port)
        result = yield from session.end()
        done["result"] = result

    return sim.spawn(driver()), done


def test_resent_end_is_acked_without_resurrecting_the_session():
    sim, msp, client = build()
    msp.start_process()
    process, done = run_session_and_reend(sim, msp, client)
    sim.run_until_process(process, limit=60_000)
    assert "result" in done, "resent session end was never acked"
    assert not done["result"].error
    assert msp.stats.duplicate_end_acks == 1
    # The resend must not have recreated the session, logged anything
    # new for it, or been miscounted as an out-of-order request.
    assert msp.sessions == {}
    assert msp.stats.requests_out_of_order == 0
