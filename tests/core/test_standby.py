"""Warm-standby log shipping and disaster failover (DESIGN.md §18).

The shipping invariant: the standby's copy equals the primary's
*durable* prefix byte-for-byte at every instant — never ahead of it,
never behind a completed flush.  A disaster (storage destroyed) then
promotes the standby, and recovery from the shipped copy reaches the
identical state a local restart would have reached from the primary's
own disk, including exactly-once semantics for in-flight requests.
"""

from repro.core import RecoveryConfig, ServiceDomainConfig, WarmStandby
from repro.core.client import EndClient
from repro.core.msp import MiddlewareServer
from repro.net import Network
from repro.sim import RngRegistry, Simulator


def bump(ctx, argument):
    yield from ctx.compute(0.1)
    raw = yield from ctx.get_session_var("n")
    n = int.from_bytes(raw or b"\x00", "big") + 1
    yield from ctx.set_session_var("n", n.to_bytes(4, "big"))
    return n.to_bytes(4, "big")


def build(log_partitions=1):
    sim = Simulator()
    rng = RngRegistry(0)
    net = Network(sim, rng=rng)
    config = RecoveryConfig(
        msp_ckpt_interval_ms=200.0,
        log_partitions=log_partitions,
    )
    msp = MiddlewareServer(
        sim, net, "server", ServiceDomainConfig(), config=config, rng=rng
    )
    msp.register_service("bump", bump)
    client = EndClient(sim, net, "client")
    return sim, msp, client


def drive(sim, session, results, count, gap_ms=5.0):
    def driver():
        yield 1.0
        for _ in range(count):
            reply = yield from session.call("bump", b"")
            results.append(int.from_bytes(reply.payload, "big"))
            yield gap_ms

    p = sim.spawn(driver())
    sim.run_until_process(p, limit=120_000)


def test_shipping_tracks_the_durable_prefix():
    sim, msp, client = build()
    standby = WarmStandby(msp)
    msp.start_process()
    session = client.open_session("server")
    results = []
    drive(sim, session, results, count=10)
    assert results == list(range(1, 11))

    assert standby.stats.shipments > 0
    assert standby.stats.shipped_bytes > 0
    for primary, mirror in zip(msp.stores, standby.mirrors):
        assert mirror.end == primary.durable_end
        assert mirror.end <= primary.end  # never ships the volatile tail
    assert standby.verify_against_primary() == []


def test_shipping_covers_every_log_partition():
    sim, msp, client = build(log_partitions=3)
    standby = WarmStandby(msp)
    msp.start_process()
    # Sessions hash to partitions; enough of them touches every one.
    for _ in range(12):
        drive(sim, client.open_session("server"), [], count=2)
    assert len(standby.mirrors) == 3
    shipped = [m.end for m in standby.mirrors]
    assert all(end > 0 for end in shipped), shipped
    assert standby.verify_against_primary() == []


def test_verification_detects_divergence():
    sim, msp, client = build()
    standby = WarmStandby(msp)
    msp.start_process()
    drive(sim, client.open_session("server"), [], count=5)
    # Tamper: grow the mirror past the primary's durable end.
    standby.mirrors[0].append(b"garbage")
    problems = standby.verify_against_primary()
    assert problems and "shipped end" in problems[0]
    assert standby.stats.verification_failures


def test_promote_refuses_while_primary_runs():
    sim, msp, client = build()
    standby = WarmStandby(msp)
    msp.start_process()
    drive(sim, client.open_session("server"), [], count=2)
    try:
        standby.promote()
    except RuntimeError as exc:
        assert "running" in str(exc)
    else:  # pragma: no cover
        raise AssertionError("promote() must refuse a running primary")


def test_failover_recovers_identical_state():
    """Disaster mid-session: the standby's shipped log recovers the
    session and the resend protocol completes every call exactly once
    — the post-failover counter continues where the durable log ends."""
    sim, msp, client = build()
    standby = WarmStandby(msp)
    msp.start_process()
    session = client.open_session("server")
    results = []
    drive(sim, session, results, count=6)

    # Disaster: the primary dies and its storage is gone; only the
    # shipped copy survives.  (msp.crash() models the process death;
    # pointing the MSP at the mirrors models the storage loss.)
    msp.crash()
    standby.failover_process(takeover_delay_ms=5.0)
    assert standby.promoted
    assert msp.store is standby.mirrors[0]

    drive(sim, session, results, count=4)
    assert results == list(range(1, 11)), results
    assert msp.stats.recoveries == 1
    assert msp.stats.replayed_requests >= 1


def test_failover_skips_the_cold_restart_delay():
    """The standby is already booted: reopening after a failover must
    beat a cold restart of the same MSP at the same instant."""

    def run(cold):
        sim, msp, client = build()
        standby = None if cold else WarmStandby(msp)
        msp.start_process()
        session = client.open_session("server")
        drive(sim, session, [], count=6)
        struck = sim.now
        msp.crash()
        if cold:
            msp.restart_process()
        else:
            standby.failover_process(takeover_delay_ms=5.0)
        while not msp.running:
            sim.run(until=sim.now + 1.0)
        return sim.now - struck

    failover_ms = run(cold=False)
    cold_ms = run(cold=True)
    assert failover_ms < cold_ms, (failover_ms, cold_ms)
