"""Unit tests for the crash-recovery analysis scan (paper §4.3).

These build logs by hand (append + flush + crash), then restart the MSP
and verify what the single-threaded scan reconstructed: position
streams, EOS pruning, session-end removal, shared-variable roll-forward
and the anchor-bounded scan start.
"""

import pytest

from repro.core import RecoveryConfig, ServiceDomainConfig
from repro.core.dv import DependencyVector
from repro.core.msp import MiddlewareServer
from repro.core.records import (
    EosRecord,
    RequestRecord,
    SessionEndRecord,
    SvWriteRecord,
)
from repro.net import Network
from repro.sim import RngRegistry, Simulator


def build_msp(seed=0):
    sim = Simulator()
    rng = RngRegistry(seed)
    net = Network(sim, rng=rng)
    msp = MiddlewareServer(
        sim, net, "server", ServiceDomainConfig(), config=RecoveryConfig(), rng=rng
    )
    msp.register_service("noop", lambda ctx, arg: iter(()))
    msp.register_shared("v", b"init")
    boot = msp.start_process()
    sim.run_until_process(boot, limit=60_000)
    return sim, msp


def flush_all(sim, msp):
    def run():
        yield from msp.log.flush(None)

    p = sim.spawn(run())
    sim.run_until_process(p, limit=60_000)


def crash_restart(sim, msp):
    msp.crash()
    boot = msp.restart_process()
    sim.run_until_process(boot, limit=600_000)


def append_request(msp, session_id, seq):
    record = RequestRecord(session_id, seq, "noop", b"", None)
    session = msp.session_for(session_id)
    lsn, size = msp.log.append(record)
    session.account_record(lsn, size, msp.epoch)
    return lsn


def test_scan_reconstructs_position_streams():
    sim, msp = build_msp()
    lsns_a = [append_request(msp, "a", i) for i in range(3)]
    lsns_b = [append_request(msp, "b", i) for i in range(2)]
    flush_all(sim, msp)
    crash_restart(sim, msp)
    # Position streams rebuilt from the scan, interleaving resolved.
    assert msp.sessions["a"].position_stream.positions() == lsns_a
    assert msp.sessions["b"].position_stream.positions() == lsns_b


def test_scan_excludes_unflushed_tail():
    sim, msp = build_msp()
    kept = append_request(msp, "a", 0)
    flush_all(sim, msp)
    append_request(msp, "a", 1)  # never flushed: lost in the crash
    crash_restart(sim, msp)
    assert msp.sessions["a"].position_stream.positions() == [kept]


def test_scan_prunes_at_eos():
    """An EOS record makes the skipped range invisible after a crash."""
    sim, msp = build_msp()
    keep = append_request(msp, "a", 0)
    orphan = append_request(msp, "a", 1)
    append_request(msp, "a", 2)
    msp.log.append(EosRecord("a", orphan_lsn=orphan))
    after = append_request(msp, "a", 3)
    flush_all(sim, msp)
    crash_restart(sim, msp)
    # Records in [orphan, EOS) are skipped; the one after EOS is kept.
    assert msp.sessions["a"].position_stream.positions() == [keep, after]


def test_scan_removes_ended_sessions():
    sim, msp = build_msp()
    append_request(msp, "gone", 0)
    msp.log.append(SessionEndRecord("gone"))
    append_request(msp, "alive", 0)
    flush_all(sim, msp)
    crash_restart(sim, msp)
    assert "gone" not in msp.sessions
    assert "alive" in msp.sessions


def test_scan_rolls_shared_variable_forward():
    sim, msp = build_msp()
    session = msp.session_for("a")
    prev = msp.shared["v"].last_write_lsn
    for value in (b"one", b"two", b"three"):
        record = SvWriteRecord("a", "v", value, DependencyVector(), prev_write_lsn=prev)
        lsn, size = msp.log.append(record)
        msp.shared["v"].apply_write(lsn, value, DependencyVector())
        session.account_record(lsn, size, msp.epoch)
        prev = lsn
    flush_all(sim, msp)
    crash_restart(sim, msp)
    assert msp.shared["v"].value == b"three"


def test_scan_loses_unflushed_writes():
    sim, msp = build_msp()
    session = msp.session_for("a")
    record = SvWriteRecord("a", "v", b"durable", DependencyVector())
    lsn, size = msp.log.append(record)
    msp.shared["v"].apply_write(lsn, b"durable", DependencyVector())
    session.account_record(lsn, size, msp.epoch)
    flush_all(sim, msp)
    record = SvWriteRecord("a", "v", b"volatile", DependencyVector(), prev_write_lsn=lsn)
    lsn2, size2 = msp.log.append(record)
    msp.shared["v"].apply_write(lsn2, b"volatile", DependencyVector())
    crash_restart(sim, msp)
    assert msp.shared["v"].value == b"durable"


def test_epoch_increments_per_recovery():
    sim, msp = build_msp()
    assert msp.epoch == 0
    crash_restart(sim, msp)
    assert msp.epoch == 1
    crash_restart(sim, msp)
    assert msp.epoch == 2
    # Own recovery history is tracked across epochs.
    assert msp.table.recovered_lsn("server", 0) is not None
    assert msp.table.recovered_lsn("server", 1) is not None


def test_recovered_number_is_durable_end():
    sim, msp = build_msp()
    append_request(msp, "a", 0)
    flush_all(sim, msp)
    durable = msp.store.durable_end
    append_request(msp, "a", 1)  # volatile
    crash_restart(sim, msp)
    assert msp.table.recovered_lsn("server", 0) == durable


def test_anchor_bounds_scan_start():
    """With checkpoints, the scan reads only the log suffix."""
    config = RecoveryConfig(
        session_ckpt_threshold_bytes=2048, msp_ckpt_interval_ms=1_000_000.0
    )
    sim = Simulator()
    rng = RngRegistry(0)
    net = Network(sim, rng=rng)
    msp = MiddlewareServer(sim, net, "server", ServiceDomainConfig(), config=config, rng=rng)
    msp.register_service("noop", lambda ctx, arg: iter(()))
    boot = msp.start_process()
    sim.run_until_process(boot, limit=60_000)

    from repro.core.checkpoint import perform_msp_checkpoint, take_session_checkpoint

    for i in range(50):
        append_request(msp, "a", i)
    flush_all(sim, msp)

    def ckpt():
        yield from take_session_checkpoint(msp, msp.sessions["a"])
        yield from perform_msp_checkpoint(msp)

    p = sim.spawn(ckpt())
    sim.run_until_process(p, limit=60_000)
    tail = [append_request(msp, "a", 50 + i) for i in range(3)]
    flush_all(sim, msp)
    crash_restart(sim, msp)
    # Only the 3 post-checkpoint records were scanned and reconstructed.
    assert msp.sessions["a"].position_stream.positions() == tail
    assert msp.stats.recovery_scan_records < 20
