"""Tests for state ids, dependency vectors and the recovery table."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.dv import DependencyVector, RecoveryTable, StateId
from repro.wire import Decoder, Encoder


def dv_of(*entries):
    dv = DependencyVector()
    for msp, epoch, lsn in entries:
        dv.observe(msp, StateId(epoch, lsn))
    return dv


def test_observe_keeps_max_per_epoch():
    dv = dv_of(("p1", 0, 10), ("p1", 0, 5), ("p1", 1, 3))
    assert dv.get("p1") == StateId(1, 3)
    assert list(dv) == [("p1", StateId(0, 10)), ("p1", StateId(1, 3))]


def test_merge_itemwise_max():
    """Paper Fig. 5: merging m5's DV [p1:11] into [p1:10,p2:20,p3:30]."""
    dv = dv_of(("p1", 0, 10), ("p2", 0, 20), ("p3", 0, 30))
    dv.merge(dv_of(("p1", 0, 11)))
    assert dv.get("p1") == StateId(0, 11)
    assert dv.get("p2") == StateId(0, 20)
    assert dv.get("p3") == StateId(0, 30)


def test_merge_keeps_old_epoch_until_resolved():
    """An epoch-1 entry must not erase an unresolved epoch-0 dependency."""
    dv = dv_of(("p1", 0, 500))
    dv.merge(dv_of(("p1", 1, 10)))
    assert list(dv) == [("p1", StateId(0, 500)), ("p1", StateId(1, 10))]

    table = RecoveryTable()
    table.record("p1", 0, 400)  # p1 only recovered epoch 0 to LSN 400
    assert table.is_orphan(dv)  # the 500 dependency is lost


def test_prune_resolved_drops_survivors_keeps_orphans():
    dv = dv_of(("p1", 0, 300), ("p1", 1, 10), ("p2", 0, 7))
    table = RecoveryTable()
    table.record("p1", 0, 400)  # 300 <= 400: survived, droppable
    dv.prune_resolved(table)
    assert list(dv) == [("p1", StateId(1, 10)), ("p2", StateId(0, 7))]


def test_prune_covered_by_flush():
    dv = dv_of(("p1", 0, 100), ("p1", 0, 100), ("p2", 0, 50))
    dv.prune_covered("p1", StateId(0, 100))
    assert dv.get("p1") is None
    assert dv.get("p2") == StateId(0, 50)


def test_prune_covered_keeps_later():
    dv = dv_of(("p1", 1, 200))
    dv.prune_covered("p1", StateId(0, 999))
    assert dv.get("p1") == StateId(1, 200)


def test_replace_with_is_deep():
    a = dv_of(("p1", 0, 1))
    b = DependencyVector()
    b.replace_with(a)
    a.observe("p1", StateId(0, 99))
    assert b.get("p1") == StateId(0, 1)


def test_copy_independent():
    a = dv_of(("p1", 0, 1))
    b = a.copy()
    b.observe("p2", StateId(0, 5))
    assert a.get("p2") is None


def test_orphan_detection_basic():
    """Paper §3.1: p1 recovers only to state < 10; p2 and p3 are orphans."""
    table = RecoveryTable()
    table.record("p1", 0, 9)
    p2_dv = dv_of(("p1", 0, 10), ("p2", 0, 20))
    p3_dv = dv_of(("p1", 0, 10), ("p2", 0, 20), ("p3", 0, 30))
    clean = dv_of(("p2", 0, 20))
    assert table.is_orphan(p2_dv)
    assert table.is_orphan(p3_dv)
    assert not table.is_orphan(clean)
    msp, state = table.find_orphan_entry(p3_dv)
    assert msp == "p1"
    assert state == StateId(0, 10)


def test_recovery_table_roundtrip():
    table = RecoveryTable()
    table.record("p1", 0, 100)
    table.record("p1", 1, 250)
    table.record("p2", 0, 7)
    enc = Encoder()
    table.encode_into(enc)
    back = RecoveryTable.decode_from(Decoder(enc.finish()))
    assert back.snapshot() == table.snapshot()


def test_recovery_table_snapshot_roundtrip():
    table = RecoveryTable()
    table.record("a", 0, 5)
    rebuilt = RecoveryTable.from_snapshot(table.snapshot())
    assert rebuilt.snapshot() == {"a": {0: 5}}


def test_recovery_table_record_returns_new_knowledge():
    table = RecoveryTable()
    assert table.record("p", 0, 5) is True
    assert table.record("p", 0, 5) is False


def test_dv_wire_size_grows_with_entries():
    small = dv_of(("p1", 0, 1))
    big = dv_of(("p1", 0, 1), ("p2", 0, 1), ("p3", 0, 1))
    assert big.wire_size() > small.wire_size()


entry_strategy = st.tuples(
    st.sampled_from(["p1", "p2", "p3", "p4"]),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=1000),
)


def build_dv(entries):
    dv = DependencyVector()
    for msp, epoch, lsn in entries:
        dv.observe(msp, StateId(epoch, lsn))
    return dv


@given(st.lists(entry_strategy), st.lists(entry_strategy))
def test_merge_commutative(e1, e2):
    a, b = build_dv(e1), build_dv(e2)
    ab = a.copy()
    ab.merge(b)
    ba = b.copy()
    ba.merge(a)
    assert ab == ba


@given(st.lists(entry_strategy), st.lists(entry_strategy), st.lists(entry_strategy))
def test_merge_associative(e1, e2, e3):
    a, b, c = build_dv(e1), build_dv(e2), build_dv(e3)
    left = a.copy()
    bc = b.copy()
    bc.merge(c)
    left.merge(bc)
    right = a.copy()
    right.merge(b)
    right.merge(c)
    assert left == right


@given(st.lists(entry_strategy))
def test_merge_idempotent(entries):
    a = build_dv(entries)
    b = a.copy()
    b.merge(a)
    assert a == b


@given(st.lists(entry_strategy), st.lists(entry_strategy))
def test_merge_monotone_orphanhood(e1, e2):
    """Merging can only add orphanhood, never remove it."""
    table = RecoveryTable()
    table.record("p1", 0, 100)
    table.record("p2", 1, 50)
    a, b = build_dv(e1), build_dv(e2)
    was_orphan = table.is_orphan(a)
    a.merge(b)
    if was_orphan:
        assert table.is_orphan(a)


@given(st.lists(entry_strategy))
def test_dv_codec_roundtrip(entries):
    dv = build_dv(entries)
    enc = Encoder()
    dv.encode_into(enc)
    dec = Decoder(enc.finish())
    assert DependencyVector.decode_from(dec) == dv
    dec.expect_end()
