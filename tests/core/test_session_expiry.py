"""Server-side idle-session expiry (bounded-memory truncation).

Chained calls open implicit inter-MSP sessions that no client ever
ends; each one checkpoints once and then its stale checkpoint LSN pins
``MspCheckpointRecord.min_lsn`` — the truncation floor — forever, so
the live log grows without bound on open-loop workloads.  The expiry
sweep (``config.session_idle_timeout_ms``) ends idle sessions exactly
like a client end, unpinning the floor.
"""

from repro.core import RecoveryConfig, ServiceDomainConfig
from repro.core.client import EndClient
from repro.core.msp import MiddlewareServer
from repro.core.records import SessionEndRecord
from repro.net import Network
from repro.sim import RngRegistry, Simulator


def bump(ctx, argument):
    yield from ctx.compute(0.1)
    raw = yield from ctx.get_session_var("n")
    n = int.from_bytes(raw or b"\x00", "big") + 1
    yield from ctx.set_session_var("n", n.to_bytes(4, "big"))
    return n.to_bytes(4, "big")


def build(timeout):
    sim = Simulator()
    rng = RngRegistry(0)
    net = Network(sim, rng=rng)
    config = RecoveryConfig(
        session_idle_timeout_ms=timeout,
        msp_ckpt_interval_ms=50.0,
        # Keep the whole log readable: the expiry's end record would
        # otherwise drop below the truncation floor before the scan.
        log_truncation=False,
    )
    msp = MiddlewareServer(
        sim, net, "server", ServiceDomainConfig(), config=config, rng=rng
    )
    msp.register_service("bump", bump)
    client = EndClient(sim, net, "client")
    return sim, msp, client


def run_one_call_then_idle(sim, msp, client, idle_ms):
    msp.start_process()
    session = client.open_session("server")

    def driver():
        yield 1.0
        yield from session.call("bump", b"x")

    p = sim.spawn(driver())
    sim.run_until_process(p, limit=60_000)
    sim.run(until=sim.now + idle_ms)
    return session


def live_records(msp):
    found = []
    offset = msp.store.truncate_lsn
    while offset < msp.store.end:
        record, offset = msp.log.record_at(offset)
        found.append(record)
    return found


def test_idle_session_is_expired():
    sim, msp, client = build(timeout=500.0)
    run_one_call_then_idle(sim, msp, client, idle_ms=2_000.0)
    assert msp.sessions == {}
    assert msp.stats.sessions_expired == 1
    # The expiry has the durable footprint of a client end.
    assert any(
        isinstance(r, SessionEndRecord) for r in live_records(msp)
    )


def test_active_session_survives_the_sweep():
    sim, msp, client = build(timeout=500.0)
    msp.start_process()
    session = client.open_session("server")

    def driver():
        yield 1.0
        for _ in range(20):
            yield from session.call("bump", b"x")
            yield 200.0  # always inside the idle timeout

    p = sim.spawn(driver())
    sim.run_until_process(p, limit=60_000)
    assert msp.stats.sessions_expired == 0
    assert len(msp.sessions) == 1


def test_timeout_none_preserves_historical_behavior():
    sim, msp, client = build(timeout=None)
    run_one_call_then_idle(sim, msp, client, idle_ms=60_000.0)
    assert msp.stats.sessions_expired == 0
    assert len(msp.sessions) == 1


def test_expiry_unpins_the_truncation_floor():
    """With segment recycling on, an abandoned session must stop
    holding the minimal LSN back once it expires: later checkpoints
    truncate the log past everything the dead session ever logged."""
    sim = Simulator()
    rng = RngRegistry(0)
    net = Network(sim, rng=rng)
    config = RecoveryConfig(
        session_idle_timeout_ms=500.0,
        msp_ckpt_interval_ms=50.0,
        log_truncation=True,
        log_segment_bytes=2048,
    )
    msp = MiddlewareServer(
        sim, net, "server", ServiceDomainConfig(), config=config, rng=rng
    )
    msp.register_service("bump", bump)
    client = EndClient(sim, net, "client")
    msp.start_process()

    abandoned = client.open_session("server")
    busy = client.open_session("server")

    def driver():
        yield 1.0
        yield from abandoned.call("bump", b"x" * 64)
        # The abandoned session now idles while another session keeps
        # appending log; its stale state would pin the floor.
        for _ in range(200):
            yield from busy.call("bump", b"x" * 64)
            yield 10.0

    p = sim.spawn(driver())
    sim.run_until_process(p, limit=600_000)
    assert msp.stats.sessions_expired == 1
    assert msp.store.recycled_segments > 0
    # The floor moved past the whole prefix the abandoned session
    # could have pinned: its records are below the live base.
    assert msp.store.truncate_lsn > 2048
