"""Client session-end propagation to implicit inter-MSP hop sessions.

A chained call opens ``{session}>{target}`` sessions downstream that no
client ever ends.  Before the fix they lingered until
``session_idle_timeout_ms`` (or forever with expiry disabled), pinning
the downstream MSP's log-truncation floor for the whole idle window.
Ending the upstream session must now unwind the chain explicitly.
"""

from repro.core import RecoveryConfig, ServiceDomainConfig
from repro.core.client import EndClient
from repro.core.msp import MiddlewareServer
from repro.core.records import SessionEndRecord
from repro.net import Network
from repro.sim import RngRegistry, Simulator


def encode(n: int) -> bytes:
    return n.to_bytes(8, "big")


def decode(raw: bytes) -> int:
    return int.from_bytes(raw, "big")


def front_method(ctx, argument):
    yield from ctx.compute(0.2)
    reply = yield from ctx.call("back", "back_method", argument)
    return reply


def back_method(ctx, argument):
    yield from ctx.compute(0.2)
    raw = yield from ctx.get_session_var("count")
    count = decode(raw or encode(0)) + 1
    yield from ctx.set_session_var("count", encode(count))
    return encode(count)


def relay_method(ctx, argument):
    """Middle hop of a depth-2 chain (front -> mid -> back)."""
    yield from ctx.compute(0.2)
    reply = yield from ctx.call("back", "back_method", argument)
    return reply


def build_world(same_domain=True, config=None, names=("front", "back")):
    sim = Simulator()
    rng = RngRegistry(0)
    net = Network(sim, rng=rng)
    if same_domain:
        domains = ServiceDomainConfig([list(names)])
    else:
        domains = ServiceDomainConfig([[n] for n in names])
    if config is None:
        # Keep the whole log readable so tests can scan for the hop
        # session's end record.
        config = RecoveryConfig(log_truncation=False)
    msps = {
        name: MiddlewareServer(sim, net, name, domains, config=config, rng=rng)
        for name in names
    }
    client = EndClient(sim, net, "client")
    return sim, net, msps, client


def run_session_and_end(sim, msps, client, calls=3):
    for msp in msps.values():
        msp.start_process()
    session = client.open_session("front")
    results = []

    def driver():
        yield 1.0
        for _ in range(calls):
            reply = yield from session.call("front_method", b"x")
            results.append(decode(reply.payload))
        yield from session.end()

    p = sim.spawn(driver())
    sim.run_until_process(p, limit=120_000)
    # Let the propagated end requests drain.
    sim.run(until=sim.now + 2_000.0)
    return results


def test_end_propagates_to_hop_session():
    # No idle expiry: without propagation the hop session lives forever.
    sim, _net, msps, client = build_world()
    msps["front"].register_service("front_method", front_method)
    msps["back"].register_service("back_method", back_method)
    results = run_session_and_end(sim, msps, client)
    assert results == [1, 2, 3]

    assert msps["front"].sessions == {}
    # Pre-fix: the implicit hop session lingered on "back" forever.
    assert msps["back"].sessions == {}
    assert msps["front"].stats.downstream_ends_sent == 1
    # The hop end has the full durable footprint of a client end.
    hop_ends = [
        r
        for r in iter_live_records(msps["back"])
        if isinstance(r, SessionEndRecord)
    ]
    assert len(hop_ends) == 1
    assert hop_ends[0].session_id.endswith(">back")


def test_end_propagates_across_domain_boundary():
    sim, _net, msps, client = build_world(same_domain=False)
    msps["front"].register_service("front_method", front_method)
    msps["back"].register_service("back_method", back_method)
    results = run_session_and_end(sim, msps, client)
    assert results == [1, 2, 3]
    assert msps["back"].sessions == {}
    assert msps["front"].stats.downstream_ends_sent == 1


def test_end_unwinds_deeper_chains_recursively():
    """front -> mid -> back: ending the client session ends the
    front>mid hop, whose end in turn ends mid>back."""
    sim, _net, msps, client = build_world(names=("front", "mid", "back"))
    msps["front"].register_service(
        "front_method",
        lambda ctx, arg: (yield from _call_through(ctx, "mid", "relay_method", arg)),
    )
    msps["mid"].register_service("relay_method", relay_method)
    msps["back"].register_service("back_method", back_method)
    results = run_session_and_end(sim, msps, client)
    assert results == [1, 2, 3]
    for name, msp in msps.items():
        assert msp.sessions == {}, f"{name} still holds sessions"
    assert msps["front"].stats.downstream_ends_sent == 1
    assert msps["mid"].stats.downstream_ends_sent == 1


def _call_through(ctx, target, method, argument):
    reply = yield from ctx.call(target, method, argument)
    return reply


def test_propagated_end_unpins_downstream_truncation_floor():
    """The point of the fix: with idle expiry disabled, the downstream
    MSP's truncation floor must still advance past everything the hop
    session logged once the upstream session ends."""
    config = RecoveryConfig(
        msp_ckpt_interval_ms=50.0,
        log_truncation=True,
        log_segment_bytes=2048,
    )
    sim, _net, msps, client = build_world(config=config)
    msps["front"].register_service("front_method", front_method)
    msps["back"].register_service("back_method", back_method)
    for msp in msps.values():
        msp.start_process()

    ended = client.open_session("front")
    busy = client.open_session("back")

    def driver():
        yield 1.0
        yield from ended.call("front_method", b"x" * 64)
        yield from ended.end()
        # The hop session front>back idles on "back" while another
        # session keeps appending log; its stale state would pin the
        # floor if the end had not propagated.
        for _ in range(200):
            yield from busy.call("back_method", b"x" * 64)
            yield 10.0

    p = sim.spawn(driver())
    sim.run_until_process(p, limit=600_000)
    back = msps["back"]
    assert back.sessions.keys() == {busy.id}
    assert back.stats.sessions_expired == 0  # expiry never configured
    assert back.store.recycled_segments > 0
    # Pre-fix the abandoned hop session pinned the floor at its first
    # records: truncate_lsn could never pass the first segment.
    assert back.store.truncate_lsn > 2048


def iter_live_records(msp):
    found = []
    offset = msp.store.truncate_lsn
    while offset < msp.store.end:
        record, offset = msp.log.record_at(offset)
        found.append(record)
    return found
