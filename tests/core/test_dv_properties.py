"""Randomized algebraic properties of dependency vectors (paper §3.1).

The recovery protocol is sound only if DV merge is a lattice join:
commutative, associative, idempotent and monotone.  These tests check
those laws — plus orphan-verdict preservation under pruning — over a
thousand seeded random vector sequences, far beyond what the
hand-written scenarios in ``test_dv.py`` reach.
"""

import random

from repro.core.dv import DependencyVector, RecoveryTable, StateId

MSPS = ("msp1", "msp2", "msp3", "msp4")


def _random_dv(rng: random.Random) -> DependencyVector:
    dv = DependencyVector()
    for _ in range(rng.randint(0, 6)):
        dv.observe(
            rng.choice(MSPS), StateId(rng.randint(0, 3), rng.randint(0, 100))
        )
    return dv


def _random_table(rng: random.Random) -> RecoveryTable:
    table = RecoveryTable()
    for _ in range(rng.randint(0, 5)):
        table.record(rng.choice(MSPS), rng.randint(0, 3), rng.randint(0, 100))
    return table


def _entries(dv: DependencyVector) -> dict:
    return {(msp, state.epoch): state.lsn for msp, state in dv}


def test_merge_is_commutative_associative_idempotent():
    rng = random.Random(0)
    for _ in range(1000):
        a, b, c = _random_dv(rng), _random_dv(rng), _random_dv(rng)

        ab = a.copy()
        ab.merge(b)
        ba = b.copy()
        ba.merge(a)
        assert ab == ba

        left = ab.copy()
        left.merge(c)
        bc = b.copy()
        bc.merge(c)
        right = a.copy()
        right.merge(bc)
        assert left == right

        aa = a.copy()
        aa.merge(a)
        assert aa == a


def test_merge_is_monotone_itemwise_max():
    rng = random.Random(1)
    for _ in range(1000):
        a, b = _random_dv(rng), _random_dv(rng)
        merged = a.copy()
        merged.merge(b)
        ea, eb, em = _entries(a), _entries(b), _entries(merged)
        assert set(em) == set(ea) | set(eb)
        for key, lsn in em.items():
            assert lsn == max(ea.get(key, -1), eb.get(key, -1))
            assert lsn >= ea.get(key, 0) and lsn >= eb.get(key, 0)


def test_observe_never_lowers_an_entry():
    rng = random.Random(2)
    for _ in range(1000):
        dv = _random_dv(rng)
        before = _entries(dv)
        msp = rng.choice(MSPS)
        state = StateId(rng.randint(0, 3), rng.randint(0, 100))
        dv.observe(msp, state)
        after = _entries(dv)
        for key, lsn in before.items():
            assert after[key] >= lsn
        assert after[(msp, state.epoch)] >= state.lsn


def test_get_returns_highest_epoch_entry():
    rng = random.Random(3)
    for _ in range(1000):
        dv = _random_dv(rng)
        entries = _entries(dv)
        for msp in MSPS:
            epochs = {e: lsn for (m, e), lsn in entries.items() if m == msp}
            got = dv.get(msp)
            if not epochs:
                assert got is None
            else:
                top = max(epochs)
                assert got == StateId(top, epochs[top])


def test_prune_resolved_preserves_orphan_verdict():
    rng = random.Random(4)
    for _ in range(1000):
        dv = _random_dv(rng)
        table = _random_table(rng)
        before_entries = _entries(dv)
        verdict_before = table.is_orphan(dv.copy())
        pruned = dv.copy()
        pruned.prune_resolved(table)
        # Pruning may only drop entries, and never flips the verdict:
        # an entry is dropped only when recovery knowledge proves it
        # durable, so it could never have been the orphan witness.
        after_entries = _entries(pruned)
        assert set(after_entries) <= set(before_entries)
        for key, lsn in after_entries.items():
            assert lsn == before_entries[key]
        assert table.is_orphan(pruned) == verdict_before


def test_copy_is_independent_snapshot():
    rng = random.Random(5)
    for _ in range(200):
        dv = _random_dv(rng)
        snap = dv.copy()
        frozen = _entries(snap)
        dv.observe("msp1", StateId(9, 10**6))
        assert _entries(snap) == frozen
