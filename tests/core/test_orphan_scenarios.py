"""Scenario tests for orphan detection and recovery (paper §4.1, §4.2).

These exercise the distinctive mechanisms: EOS records and the Fig. 11
multi-crash pair combinations, value logging's recovery independence
(a recovering reader never forces the writer to roll back), and lazy
shared-variable rollback on read.
"""

import pytest

from repro.core import RecoveryConfig, ServiceDomainConfig
from repro.core.client import EndClient
from repro.core.msp import MiddlewareServer
from repro.core.records import EosRecord, SvUpdateRecord, decode_record
from repro.net import Network
from repro.sim import RngRegistry, Simulator


def encode(n):
    return n.to_bytes(8, "big")


def decode(raw):
    return int.from_bytes(raw, "big")


class CrashPlan:
    """Kill the backend right after its reply reaches the front MSP —
    the paper's §5.4 forced-crash point, which loses the backend's
    buffered log records and orphans the front session."""

    def __init__(self):
        self.backend = None
        self.crash_on_requests: set[int] = set()
        self.seen = 0

    def trigger(self):
        self.seen += 1
        if self.seen in self.crash_on_requests and self.backend.running:
            self.backend.crash()
            self.backend.restart_process()


def make_remote_method(plan: CrashPlan):
    def remote_method(ctx, argument):
        yield from ctx.compute(0.2)
        yield from ctx.call("backend", "bump", argument)
        if not ctx.is_replay:
            plan.trigger()
        raw = yield from ctx.get_session_var("n")
        n = decode(raw or encode(0)) + 1
        yield from ctx.set_session_var("n", encode(n))
        return encode(n)

    return remote_method


def bump_method(ctx, argument):
    yield from ctx.compute(0.2)
    new = yield from ctx.update_shared("count", lambda raw: encode(decode(raw) + 1))
    return new


def reader_method(ctx, argument):
    """Reads the shared variable without writing it."""
    yield from ctx.compute(0.1)
    value = yield from ctx.read_shared("count")
    return value


def build(crash_on_requests=()):
    sim = Simulator()
    rng = RngRegistry(5)
    net = Network(sim, rng=rng)
    domains = ServiceDomainConfig([["front", "backend"]])
    front = MiddlewareServer(sim, net, "front", domains, config=RecoveryConfig(), rng=rng)
    backend = MiddlewareServer(sim, net, "backend", domains, config=RecoveryConfig(), rng=rng)
    plan = CrashPlan()
    plan.backend = backend
    plan.crash_on_requests = set(crash_on_requests)
    front.register_service("remote", make_remote_method(plan))
    backend.register_service("bump", bump_method)
    backend.register_service("read", reader_method)
    backend.register_shared("count", encode(0))
    front.start_process()
    backend.start_process()
    client = EndClient(sim, net, "client")
    return sim, front, backend, client


def log_records(msp):
    records = []
    offset = 0
    while offset < msp.store.end:
        record, offset = msp.log.record_at(offset)
        records.append(record)
    return records


def test_orphan_recovery_writes_eos_record():
    """An orphaned front session writes an EOS pointing at the orphan
    log record and skips it on any later recovery."""
    sim, front, backend, client = build(crash_on_requests={3})
    session = client.open_session("front")
    results = []

    def driver():
        yield 1.0
        for i in range(6):
            result = yield from session.call("remote", b"")
            results.append(decode(result.payload))

    p = sim.spawn(driver())
    sim.run_until_process(p, limit=600_000)
    assert results == [1, 2, 3, 4, 5, 6]
    assert front.stats.orphan_recoveries >= 1
    eos = [r for r in log_records(front) if isinstance(r, EosRecord)]
    assert len(eos) >= 1
    # The EOS points back at a real record of this session.
    assert all(e.orphan_lsn < front.store.end for e in eos)


def test_multiple_crashes_disjoint_eos_pairs():
    """Fig. 11: two backend crashes produce two (orphan, EOS) pairs and
    the session still recovers exactly-once."""
    sim, front, backend, client = build(crash_on_requests={3, 7})
    session = client.open_session("front")
    results = []

    def driver():
        yield 1.0
        for i in range(10):
            result = yield from session.call("remote", b"")
            results.append(decode(result.payload))

    p = sim.spawn(driver())
    sim.run_until_process(p, limit=1_200_000)
    assert results == list(range(1, 11))
    count = decode(backend.shared["count"].value)
    assert count == 10
    eos = [r for r in log_records(front) if isinstance(r, EosRecord)]
    assert len(eos) >= 2


def test_value_logging_recovery_independence():
    """§3.3: a reader session recovers from the log without the writer
    session rolling back.  The reader replays its reads from its own
    log records; the writer keeps executing normally."""
    sim, front, backend, client = build()
    writer = client.open_session("backend")
    reader = client.open_session("backend")
    observed = []

    def writer_driver():
        yield 1.0
        for _ in range(8):
            yield from writer.call("bump", b"")

    def reader_driver():
        yield 2.0
        for _ in range(8):
            result = yield from reader.call("read", b"")
            observed.append(decode(result.payload))

    wp = sim.spawn(writer_driver())
    rp = sim.spawn(reader_driver())
    sim.run_until_process(wp, limit=600_000)
    sim.run_until_process(rp, limit=600_000)

    # Crash the backend: both sessions replay in parallel from the log.
    backend.crash()
    backend.restart_process()

    def after():
        yield 500.0
        result = yield from reader.call("read", b"")
        return decode(result.payload)

    p = sim.spawn(after())
    sim.run_until_process(p, limit=600_000)
    assert p.result == 8
    # Reader replayed its requests purely from value-logged records.
    assert backend.stats.replayed_requests >= 8


def test_lazy_sv_rollback_on_read():
    """§4.2: after a crash the scan rolls variables forward to the most
    recent logged value, possibly an orphan; the rollback happens lazily
    when a session reads the variable."""
    sim, front, backend, client = build()
    session = client.open_session("front")

    def driver():
        yield 1.0
        for i in range(4):
            yield from session.call("remote", b"")

    p = sim.spawn(driver())
    sim.run_until_process(p, limit=600_000)
    count_before = decode(backend.shared["count"].value)
    assert count_before == 4

    reader = client.open_session("backend")

    def read_after_crash():
        backend.crash()
        backend.restart_process()
        yield 500.0
        result = yield from reader.call("read", b"")
        return decode(result.payload)

    p = sim.spawn(read_after_crash())
    sim.run_until_process(p, limit=600_000)
    # All four bumps were flushed (each reply to the client forced the
    # log), so the value must survive the crash.
    assert p.result == 4


def test_update_records_on_log():
    sim, front, backend, client = build()
    session = client.open_session("front")

    def driver():
        yield 1.0
        yield from session.call("remote", b"")

    p = sim.spawn(driver())
    sim.run_until_process(p, limit=600_000)
    updates = [r for r in log_records(backend) if isinstance(r, SvUpdateRecord)]
    assert len(updates) == 1
    assert updates[0].variable == "count"
    assert decode(updates[0].old_value) == 0
    assert decode(updates[0].new_value) == 1
    # The combined record round-trips through the codec.
    assert decode_record(updates[0].encode()) == updates[0]
