"""Idle-expiry sweep vs crash recovery (regression).

Sessions rebuilt by crash recovery used to keep the freshly-constructed
``last_active_ms = 0.0``; once ``sim.now >= session_idle_timeout_ms``
the first sweep after recovery expired every recovered session before
its client (or the lazy pump) could reach it.  The idle clock must
restart at recovery, and a ``lazy_pending`` session must never be
expired before its chain replay runs.
"""

from repro.core import RecoveryConfig, ServiceDomainConfig
from repro.core.client import EndClient
from repro.core.msp import MiddlewareServer
from repro.net import Network
from repro.sim import RngRegistry, Simulator


def bump(ctx, argument):
    yield from ctx.compute(0.1)
    raw = yield from ctx.get_session_var("n")
    n = int.from_bytes(raw or b"\x00", "big") + 1
    yield from ctx.set_session_var("n", n.to_bytes(4, "big"))
    return n.to_bytes(4, "big")


def build(recovery_mode="eager", timeout=500.0):
    sim = Simulator()
    rng = RngRegistry(0)
    net = Network(sim, rng=rng)
    config = RecoveryConfig(
        session_idle_timeout_ms=timeout,
        msp_ckpt_interval_ms=100.0,
        recovery_mode=recovery_mode,
        log_truncation=False,
    )
    msp = MiddlewareServer(
        sim, net, "server", ServiceDomainConfig(), config=config, rng=rng
    )
    msp.register_service("bump", bump)
    client = EndClient(sim, net, "client")
    return sim, msp, client


def drive_calls(sim, session, results, count, gap_ms):
    def driver():
        yield 1.0
        for _ in range(count):
            reply = yield from session.call("bump", b"")
            results.append(int.from_bytes(reply.payload, "big"))
            yield gap_ms

    p = sim.spawn(driver())
    sim.run_until_process(p, limit=120_000)


def crash_then_idle(recovery_mode):
    """Stay active past the idle timeout, crash, then go idle but keep
    the post-recovery gap *inside* the timeout window."""
    sim, msp, client = build(recovery_mode=recovery_mode)
    msp.start_process()
    session = client.open_session("server")
    results = []
    # Three calls ~190 ms apart: the driver ends around t=575 ms, past
    # the 500 ms timeout, but the session was never idle for 500 ms.
    drive_calls(sim, session, results, count=3, gap_ms=190.0)
    assert results == [1, 2, 3]
    assert sim.now > msp.config.session_idle_timeout_ms

    msp.crash()
    msp.restart_process()
    # Recovery finishes ~t=630; several sweeps run before t=950 but the
    # recovered session has been idle well under the timeout.
    sim.run(until=950.0)
    assert msp.stats.sessions_expired == 0, (
        "recovered session expired by the first post-recovery sweep "
        "(idle clock not restarted at recovery)"
    )
    assert len(msp.sessions) == 1
    return sim, msp, client, session, results


def test_recovered_session_survives_idle_sweep_eager():
    sim, msp, _client, session, results = crash_then_idle("eager")

    def resume():
        reply = yield from session.call("bump", b"")
        results.append(int.from_bytes(reply.payload, "big"))

    p = sim.spawn(resume())
    sim.run_until_process(p, limit=120_000)
    # Exactly-once continuation across crash + idle window.
    assert results == [1, 2, 3, 4]


def test_recovered_session_survives_idle_sweep_lazy():
    sim, msp, _client, session, results = crash_then_idle("lazy")

    def resume():
        reply = yield from session.call("bump", b"")
        results.append(int.from_bytes(reply.payload, "big"))

    p = sim.spawn(resume())
    sim.run_until_process(p, limit=120_000)
    assert results == [1, 2, 3, 4]


def test_recovered_session_still_expires_after_a_full_idle_window():
    """The restart must not grant immortality: a recovered session that
    stays idle for a whole timeout window is still swept."""
    sim, msp, _client, _session, _results = crash_then_idle("eager")
    sim.run(until=sim.now + 2_000.0)
    assert msp.stats.sessions_expired == 1
    assert msp.sessions == {}


def test_sweep_skips_lazy_pending_sessions():
    """A ``lazy_pending`` session holds unreplayed state; expiring it
    would drop the chain before replay.  The sweep must skip it until
    the replay claims it."""
    sim, msp, client = build(timeout=200.0)
    msp.start_process()
    session = client.open_session("server")
    results = []
    drive_calls(sim, session, results, count=1, gap_ms=0.0)
    server_session = next(iter(msp.sessions.values()))
    server_session.lazy_pending = True
    sim.run(until=sim.now + 2_000.0)
    assert msp.stats.sessions_expired == 0
    assert len(msp.sessions) == 1
    # Once the claim clears the flag, the ordinary expiry resumes.
    server_session.lazy_pending = False
    server_session.last_active_ms = sim.now
    sim.run(until=sim.now + 2_000.0)
    assert msp.stats.sessions_expired == 1
