"""Edge cases of the durable analysis scan (``LogManager.scan_durable``).

The cases recovery actually hits: a brand-new empty log, an anchor that
points exactly at the durable tail (nothing to scan), and a scan that
stops at a torn tail frame and is restarted once the frame is whole.
"""

import random

from repro.core.log_manager import LogManager
from repro.core.records import AnnouncementRecord
from repro.sim import ProcessGroup, Simulator
from repro.storage import Disk, StableStore


def make_log(seed=0):
    sim = Simulator()
    store = StableStore()
    disk = Disk(sim, rng=random.Random(seed))
    log = LogManager(sim, store, disk)
    log.start(group=ProcessGroup("msp"))
    return sim, log


def run_scan(sim, log, start):
    out = {}

    def proc():
        out["records"] = yield from log.scan_durable(start)

    sim.run_process(proc())
    return out["records"]


def flush(sim, log, lsn):
    def proc():
        yield from log.flush(lsn)

    sim.run_process(proc())


def rec(i):
    return AnnouncementRecord(f"msp{i}", epoch=0, recovered_lsn=i)


def test_scan_empty_log():
    sim, log = make_log()
    assert run_scan(sim, log, 0) == []
    assert log.stats.read_chunks == 0


def test_scan_from_exact_durable_tail():
    sim, log = make_log()
    lsn1, _ = log.append(rec(1))
    lsn2, size2 = log.append(rec(2))
    flush(sim, log, lsn2)
    tail = log.store.durable_end
    assert tail == lsn2 + size2
    chunks_before = log.stats.read_chunks
    assert run_scan(sim, log, tail) == []
    # An empty range reads nothing — recovery after a checkpoint whose
    # min LSN equals the tail must not charge any disk time.
    assert log.stats.read_chunks == chunks_before


def test_scan_stops_at_torn_tail_and_restarts():
    sim, log = make_log()
    lsn1, _size1 = log.append(rec(1))
    lsn2, size2 = log.append(rec(2))
    # Make record 1 plus only a sliver of record 2's frame durable — the
    # torn tail a crash mid-flush leaves behind.
    log.store.mark_durable(lsn2 + 3)
    first = run_scan(sim, log, 0)
    assert [lsn for lsn, _ in first] == [lsn1]
    assert first[0][1] == rec(1)

    # The frame completes (e.g. the next flush); a restarted scan from
    # where the first one stopped sees exactly the remaining record.
    log.store.mark_durable(lsn2 + size2)
    second = run_scan(sim, log, lsn2)
    assert [(lsn, r) for lsn, r in second] == [(lsn2, rec(2))]


def test_restarted_scan_hits_decode_cache():
    sim, log = make_log()
    lsns = []
    for i in range(8):
        lsn, size = log.append(rec(i))
        lsns.append(lsn)
    flush(sim, log, lsns[-1])
    run_scan(sim, log, 0)
    misses_after_first = log.stats.decode_cache_misses
    assert misses_after_first >= 8
    run_scan(sim, log, 0)
    assert log.stats.decode_cache_misses == misses_after_first
    assert log.stats.decode_cache_hits >= 8
