"""Golden-bytes compatibility tests for the record codecs.

The hex strings below were produced by the *pre-fast-path* codec (the
chained ``Encoder`` implementation in the seed tree).  The compiled
codecs must keep the byte format identical in both directions: a log
written by the old codec decodes to the same records under the new one,
and the new encoder reproduces the old bytes exactly — otherwise
existing logs (and the paper's sector-accounting arithmetic) break.
"""

import pytest

from repro.core import records as R
from repro.core.dv import DependencyVector, StateId
from repro.core.records import _decode_record_general, decode_record


def _dv() -> DependencyVector:
    dv = DependencyVector()
    dv.observe("MSP1", StateId(0, 12345))
    dv.observe("MSP2", StateId(1, 987654))
    return dv


#: (record object, hex of its encoding under the seed codec)
GOLDEN = [
    (
        R.RequestRecord("sess-1", 17, "ServiceMethod1", b"\x00\x01arg", sender_dv=_dv()),
        "0106736573732d31110e536572766963654d6574686f64310500016172670102044d5350310100b960044d535032010186a43c",
    ),
    (
        R.RequestRecord("sess-1", 18, "m", b"", sender_dv=None),
        "0106736573732d3112016d0000",
    ),
    (
        R.ReplyRecord("sess-1", "out-2", 9, b"payload\xff", sender_dv=_dv()),
        "0206736573732d31056f75742d3209087061796c6f6164ff0102044d5350310100b960044d535032010186a43c",
    ),
    (
        R.ReplyRecord("sess-1", "out-2", 10, b"p", sender_dv=None),
        "0206736573732d31056f75742d320a017000",
    ),
    (
        R.SvReadRecord("sess-1", "var-a", b"value", variable_dv=_dv()),
        "0306736573732d31057661722d610576616c756502044d5350310100b960044d535032010186a43c",
    ),
    (
        R.SvWriteRecord("sess-1", "var-a", b"newval", writer_dv=_dv(), prev_write_lsn=4096),
        "0406736573732d31057661722d61066e657776616c02044d5350310100b960044d535032010186a43c8020",
    ),
    (
        R.SvWriteRecord("sess-1", "var-a", b"", writer_dv=DependencyVector()),
        "0406736573732d31057661722d610000ffffffffffff3f",
    ),
    (
        R.SvUpdateRecord(
            "sess-1", "var-a", b"old", b"new",
            variable_dv=_dv(), writer_dv=_dv(), prev_write_lsn=77,
        ),
        "0c06736573732d31057661722d61036f6c64036e657702044d5350310100b960044d53503201"
        "0186a43c02044d5350310100b960044d535032010186a43c4d",
    ),
    (
        R.SvCheckpointRecord("var-a", b"ckptval", version=3),
        "05057661722d6107636b707476616c03",
    ),
    (
        R.SvOrderRecord("sess-1", "var-a", version=5, is_write=True),
        "0d06736573732d31057661722d610501",
    ),
    (
        R.SessionCheckpointRecord(
            "sess-1", {"x": b"1", "y": b"22"}, b"reply", 4, 5, {"out-2": 7},
            buffered_reply_error=True,
        ),
        "0606736573732d310201780131017902323201057265706c79040501056f75742d320701",
    ),
    (
        R.SessionCheckpointRecord("sess-1", {}, None, 0, 1, {}),
        "0606736573732d31000000010000",
    ),
    (
        R.MspCheckpointRecord(
            {"MSP1": {0: 100, 1: 200}}, {"sess-1": 50}, {"var-a": 60}, epoch=2
        ),
        "070201044d53503102006401c8010106736573732d313201057661722d613c",
    ),
    (
        R.EosRecord("sess-1", orphan_lsn=321),
        "0806736573732d31c102",
    ),
    (
        R.AnnouncementRecord("MSP2", epoch=1, recovered_lsn=654321),
        "09044d53503201f1f727",
    ),
    (
        R.FillerRecord(size=13),
        "0b0d00000000000000000000000000",
    ),
    (
        R.SessionEndRecord("sess-1"),
        "0a06736573732d31",
    ),
    # PR 8 command logging.  A CommandRecord is byte-for-byte a
    # RequestRecord with kind 0x0e — the analysis scan, partition
    # routing and lazy chains treat the two identically by design.
    (
        R.CommandRecord("sess-1", 17, "ServiceMethod1", b"\x00\x01arg", sender_dv=_dv()),
        "0e06736573732d31110e536572766963654d6574686f64310500016172670102044d5350310100b960044d535032010186a43c",
    ),
    (
        R.CommandRecord("sess-1", 18, "m", b"", sender_dv=None),
        "0e06736573732d3112016d0000",
    ),
    # A non-value session checkpoint appends the coded logging mode;
    # value mode omits it (the SessionCheckpointRecord entries above
    # pin that the pre-PR 8 bytes are unchanged).
    (
        R.SessionCheckpointRecord(
            "sess-1", {"x": b"1"}, None, 0, 1, {}, logging_mode="command"
        ),
        "0606736573732d310101780131000001000001",
    ),
    # SV checkpoints with a command frontier: the trailing block is
    # prev_write_lsn (NO_LSN placeholder when absent) then the sorted
    # (session, lsn, ordinal) triples.
    (
        R.SvCheckpointRecord(
            "var-a", b"ckptval", version=3, prev_write_lsn=4096,
            command_frontier={"sess-1": (200, 1), "sess-2": (150, 0)},
        ),
        "05057661722d6107636b707476616c0380200206736573732d31c8010106736573732d32960100",
    ),
    (
        R.SvCheckpointRecord(
            "var-a", b"ckptval", version=3,
            command_frontier={"sess-1": (200, 2)},
        ),
        "05057661722d6107636b707476616c03ffffffffffff3f0106736573732d31c80102",
    ),
]


@pytest.mark.parametrize(
    "record,golden_hex", GOLDEN, ids=[type(r).__name__ + f"-{i}" for i, (r, _) in enumerate(GOLDEN)]
)
def test_old_codec_bytes_decode_identically(record, golden_hex):
    """A log written by the seed codec parses to the same record."""
    assert decode_record(bytes.fromhex(golden_hex)) == record


@pytest.mark.parametrize(
    "record,golden_hex", GOLDEN, ids=[type(r).__name__ + f"-{i}" for i, (r, _) in enumerate(GOLDEN)]
)
def test_new_encoder_reproduces_old_bytes(record, golden_hex):
    """The compiled encoders emit byte-identical output."""
    assert record.encode().hex() == golden_hex


@pytest.mark.parametrize(
    "record,golden_hex", GOLDEN, ids=[type(r).__name__ + f"-{i}" for i, (r, _) in enumerate(GOLDEN)]
)
def test_fast_and_general_decoders_agree(record, golden_hex):
    """The compiled decoders and the chained-Decoder path agree on
    every kind (the general path is the fallback for rare kinds)."""
    payload = bytes.fromhex(golden_hex)
    assert _decode_record_general(payload) == decode_record(payload) == record


@pytest.mark.parametrize(
    "record,golden_hex", GOLDEN, ids=[type(r).__name__ + f"-{i}" for i, (r, _) in enumerate(GOLDEN)]
)
def test_decode_from_memoryview_matches(record, golden_hex):
    """Zero-copy scans hand the decoder memoryviews, not bytes."""
    payload = bytes.fromhex(golden_hex)
    decoded = decode_record(memoryview(payload))
    assert decoded == record
    # Leaf byte fields must be real bytes, not views pinning the log
    # buffer alive.
    for name, value in vars(decoded).items():
        assert not isinstance(value, memoryview), name
