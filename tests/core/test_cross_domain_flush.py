"""Cross-domain pessimistic flush: no orphans, exactly-once (§2.3/§5).

The fleet's domain-crossing chains rest on one guarantee: an MSP
flushes its log *before* any message leaves its service domain, so a
reply a downstream MSP sent across the boundary can never be orphaned
by the downstream crashing afterwards.  These tests race a downstream
crash against its just-delivered reply across a sweep of instants — at
every point the upstream must keep its session (no orphan recovery)
and the end-to-end effects must land exactly once.
"""

import pytest

from repro.core import RecoveryConfig, ServiceDomainConfig
from repro.core.client import EndClient
from repro.core.msp import MiddlewareServer
from repro.net import Network
from repro.sim import RngRegistry, Simulator


def encode(n):
    return n.to_bytes(8, "big")


def decode(raw):
    return int.from_bytes(raw, "big")


def upstream_method(ctx, argument):
    yield from ctx.compute(0.2)
    yield from ctx.call("down", "downstream_method", argument)
    local = decode((yield from ctx.read_shared("UP")))
    yield from ctx.write_shared("UP", encode(local + 1))
    raw = yield from ctx.get_session_var("count")
    count = decode(raw or encode(0)) + 1
    yield from ctx.set_session_var("count", encode(count))
    return encode(count)


def downstream_method(ctx, argument):
    yield from ctx.compute(0.2)
    remote = decode((yield from ctx.read_shared("DOWN")))
    yield from ctx.write_shared("DOWN", encode(remote + 1))
    return b"ok"


def build_two_domains(seed=0):
    sim = Simulator()
    rng = RngRegistry(seed)
    net = Network(sim, rng=rng)
    domains = ServiceDomainConfig([["up"], ["down"]])
    up = MiddlewareServer(sim, net, "up", domains, config=RecoveryConfig(), rng=rng)
    down = MiddlewareServer(sim, net, "down", domains, config=RecoveryConfig(), rng=rng)
    up.register_service("upstream_method", upstream_method)
    up.register_shared("UP", encode(0))
    down.register_service("downstream_method", downstream_method)
    down.register_shared("DOWN", encode(0))
    client = EndClient(sim, net, "client")
    return sim, up, down, client


@pytest.mark.parametrize("crash_time", [26.0, 28.0, 30.0, 32.0, 34.0, 38.0, 42.0])
def test_downstream_crash_never_orphans_upstream(crash_time):
    sim, up, down, client = build_two_domains()
    up.start_process()
    down.start_process()
    session = client.open_session("up")
    results = []

    def driver():
        yield 1.0
        for _ in range(8):
            result = yield from session.call("upstream_method", b"")
            results.append(decode(result.payload))

    def crasher():
        # Swept across a request's lifetime: mid-serve, right after the
        # reply crossed the boundary, during the next request.
        yield crash_time
        down.crash()
        down.restart_process()

    p = sim.spawn(driver())
    sim.spawn(crasher())
    sim.run_until_process(p, limit=1_200_000)
    assert results == list(range(1, 9)), f"crash at {crash_time}"
    # The downstream flushed before its reply left the domain, so the
    # upstream never saw orphaned state: no rollback on its side.
    assert up.stats.orphan_recoveries == 0
    assert decode(up.shared["UP"].value) == 8
    assert decode(down.shared["DOWN"].value) == 8


def test_no_dv_crosses_the_boundary_under_crashes():
    """Even with a mid-run crash + recovery announcements in flight,
    no record either side logged may carry the other domain's DV."""
    from repro.core.records import ReplyRecord, RequestRecord

    sim, up, down, client = build_two_domains()
    up.start_process()
    down.start_process()
    session = client.open_session("up")

    def driver():
        yield 1.0
        for _ in range(6):
            yield from session.call("upstream_method", b"")

    def crasher():
        yield 31.0
        down.crash()
        down.restart_process()

    p = sim.spawn(driver())
    sim.spawn(crasher())
    sim.run_until_process(p, limit=1_200_000)
    for msp in (up, down):
        offset = msp.store.truncate_lsn
        while offset < msp.store.end:
            record, offset = msp.log.record_at(offset)
            if isinstance(record, (RequestRecord, ReplyRecord)):
                assert record.sender_dv is None or not any(
                    owner != msp.name for owner, _sid in record.sender_dv
                ), f"{msp.name} logged a foreign DV: {record}"
