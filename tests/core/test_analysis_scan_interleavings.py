"""Analysis-scan interleavings the dispatch tests don't cover.

These are the orderings crash timing actually produces: an EOS written
before the crashed session ever logged a position record, sessions whose
ids are reused across end/recreate cycles, and EOS pruning exactly at
the ``orphan_lsn`` boundary.
"""

from repro.core.crash_recovery import analyze_scan
from repro.core.dv import DependencyVector
from repro.core.records import (
    EosRecord,
    ReplyRecord,
    RequestRecord,
    SessionCheckpointRecord,
    SessionEndRecord,
    SvReadRecord,
)


class _StubMsp:
    shared: dict = {}


def _request(session_id, seq):
    return RequestRecord(session_id, seq, "m", b"x")


def _session_ckpt(session_id):
    return SessionCheckpointRecord(
        session_id,
        variables={},
        buffered_reply=None,
        buffered_reply_seq=0,
        next_expected_seq=1,
        outgoing_next_seq={},
    )


def test_eos_before_any_position_record_is_harmless():
    # The orphan session crashed before logging anything; a peer's EOS
    # for it still lands in our log.  There is nothing to prune and the
    # session must not materialize out of the EOS itself.
    records = [
        (0, EosRecord("ghost", orphan_lsn=0)),
        (10, _request("s1", 1)),
    ]
    state = analyze_scan(_StubMsp(), records)
    assert state.positions == {"s1": [10]}
    assert "ghost" not in state.positions
    assert state.ended == set()


def test_eos_prunes_exactly_at_the_orphan_lsn_boundary():
    # Positions strictly below orphan_lsn survive; the orphan record
    # itself (p == orphan_lsn) and everything after it are invisible.
    records = [
        (0, _request("s1", 1)),
        (10, _request("s1", 2)),
        (20, _request("s1", 3)),
        (30, EosRecord("s1", orphan_lsn=10)),
    ]
    state = analyze_scan(_StubMsp(), records)
    assert state.positions == {"s1": [0]}
    # Boundary sweep: the kept set is always {p : p < orphan_lsn}.
    for orphan_lsn, kept in ((0, []), (5, [0]), (20, [0, 10]), (25, [0, 10, 20])):
        state = analyze_scan(
            _StubMsp(),
            records[:3] + [(30, EosRecord("s1", orphan_lsn=orphan_lsn))],
        )
        assert state.positions["s1"] == kept, f"orphan_lsn={orphan_lsn}"


def test_eos_after_session_end_does_not_resurrect():
    # End first, EOS for the same id later (a late-arriving peer EOS):
    # the session stays ended, no empty position list reappears.
    records = [
        (0, _request("s1", 1)),
        (10, SessionEndRecord("s1")),
        (20, EosRecord("s1", orphan_lsn=0)),
    ]
    state = analyze_scan(_StubMsp(), records)
    assert state.ended == {"s1"}
    assert "s1" not in state.positions


def test_session_id_reuse_after_end_starts_clean():
    # End, then a later checkpoint for the *reused* id (a new client
    # incarnation picked the same name): the id is no longer ended, its
    # replay starts at the new checkpoint, and none of the first
    # incarnation's positions leak into the second.
    records = [
        (0, _request("s1", 1)),
        (10, ReplyRecord("s1", "out", 1, b"r")),
        (20, SessionEndRecord("s1")),
        (30, _session_ckpt("s1")),
        (40, _request("s1", 1)),
        (50, SvReadRecord("s1", "SV0", b"v", DependencyVector())),
    ]
    state = analyze_scan(_StubMsp(), records)
    assert state.ended == set()
    assert state.session_ckpts == {"s1": 30}
    assert state.positions == {"s1": [40, 50]}


def test_interleaved_end_and_reuse_across_sessions():
    # Two sessions ending and one id reused, interleaved — membership
    # in ended/positions/ckpts must track each id independently.
    records = [
        (0, _request("a", 1)),
        (10, _request("b", 1)),
        (20, SessionEndRecord("a")),
        (30, _request("b", 2)),
        (40, _session_ckpt("a")),  # id "a" reused
        (50, SessionEndRecord("b")),
        (60, _request("a", 1)),
    ]
    state = analyze_scan(_StubMsp(), records)
    assert state.ended == {"b"}
    assert state.positions == {"a": [60]}
    assert state.session_ckpts == {"a": 40}
