"""Tests for session / shared-variable / fuzzy MSP checkpointing."""

import pytest

from repro.core import RecoveryConfig, ServiceDomainConfig
from repro.core.client import EndClient
from repro.core.msp import MiddlewareServer
from repro.core.records import (
    MspCheckpointRecord,
    SessionCheckpointRecord,
    SvCheckpointRecord,
)
from repro.net import Network
from repro.sim import RngRegistry, Simulator


def counter_method(ctx, argument):
    yield from ctx.compute(0.1)
    new = yield from ctx.update_shared(
        "total", lambda raw: (int.from_bytes(raw, "big") + 1).to_bytes(8, "big")
    )
    raw = yield from ctx.get_session_var("n")
    n = int.from_bytes(raw or b"\x00", "big") + 1
    yield from ctx.set_session_var("n", n.to_bytes(4, "big"))
    return n.to_bytes(4, "big")


def build(config=None, seed=0):
    sim = Simulator()
    rng = RngRegistry(seed)
    net = Network(sim, rng=rng)
    msp = MiddlewareServer(
        sim, net, "server", ServiceDomainConfig(), config=config or RecoveryConfig(), rng=rng
    )
    msp.register_service("counter", counter_method)
    msp.register_shared("total", (0).to_bytes(8, "big"))
    client = EndClient(sim, net, "client")
    return sim, msp, client


def drive(sim, msp, client, n):
    msp.start_process()
    session = client.open_session("server")
    results = []

    def driver():
        yield 1.0
        for _ in range(n):
            result = yield from session.call("counter", b"x" * 100)
            results.append(int.from_bytes(result.payload, "big"))

    p = sim.spawn(driver())
    sim.run_until_process(p, limit=600_000)
    return results, session


def records_of(msp, kind):
    found = []
    # Checkpoint-driven truncation recycles the log below the floor, so
    # walk only the live suffix.
    offset = msp.store.truncate_lsn
    while offset < msp.store.end:
        record, offset = msp.log.record_at(offset)
        if isinstance(record, kind):
            found.append(record)
    return found


def test_session_checkpoint_taken_at_threshold():
    config = RecoveryConfig(session_ckpt_threshold_bytes=4096)
    sim, msp, client = build(config=config)
    drive(sim, msp, client, 30)
    ckpts = records_of(msp, SessionCheckpointRecord)
    assert len(ckpts) >= 2
    assert msp.stats.session_checkpoints == len(ckpts)
    # Each checkpoint captured the session variables of the moment.
    assert all("n" in c.variables for c in ckpts)


def test_session_checkpoint_resets_threshold_accounting():
    config = RecoveryConfig(session_ckpt_threshold_bytes=4096)
    sim, msp, client = build(config=config)
    _, session = drive(sim, msp, client, 30)
    server_session = msp.sessions[session.id]
    assert server_session.bytes_since_ckpt < 4096


def test_sv_checkpoint_every_n_writes():
    config = RecoveryConfig(sv_ckpt_write_threshold=10)
    sim, msp, client = build(config=config)
    drive(sim, msp, client, 25)
    ckpts = records_of(msp, SvCheckpointRecord)
    assert len(ckpts) == 2
    # The checkpointed values are the values at write 10 and write 20.
    assert [int.from_bytes(c.value[:8], "big") for c in ckpts] == [10, 20]


def test_msp_checkpoint_daemon_advances_anchor():
    config = RecoveryConfig(msp_ckpt_interval_ms=50.0)
    sim, msp, client = build(config=config)
    drive(sim, msp, client, 20)
    anchors = records_of(msp, MspCheckpointRecord)
    assert len(anchors) >= 3
    final_anchor = msp.log.read_anchor()
    assert final_anchor is not None
    record, _ = msp.log.record_at(final_anchor)
    assert isinstance(record, MspCheckpointRecord)


def test_forced_checkpoint_for_idle_session():
    """An idle session gets force-checkpointed after N MSP checkpoints
    so the scan start keeps advancing (paper §3.4)."""
    config = RecoveryConfig(
        msp_ckpt_interval_ms=20.0,
        forced_ckpt_msp_count=3,
        session_ckpt_threshold_bytes=100 * 1024 * 1024,  # never by size
    )
    sim, msp, client = build(config=config)
    msp.start_process()
    session = client.open_session("server")

    def driver():
        yield 1.0
        yield from session.call("counter", b"")
        yield 200.0  # idle long enough for forced checkpoints

    p = sim.spawn(driver())
    sim.run_until_process(p, limit=600_000)
    assert msp.stats.forced_checkpoints >= 1
    assert msp.stats.session_checkpoints >= 1


def test_msp_checkpoint_min_lsn_bounds_scan():
    """After checkpoints, crash-recovery scans only the log suffix."""
    config = RecoveryConfig(
        session_ckpt_threshold_bytes=4096, msp_ckpt_interval_ms=50.0
    )
    sim, msp, client = build(config=config)
    results, session = drive(sim, msp, client, 40)
    log_size = msp.store.durable_end
    msp.crash()
    boot = msp.restart_process()
    sim.run_until_process(boot, limit=600_000)
    # The analysis scan read far less than the whole log.
    scanned = msp.stats.recovery_scan_records
    total_records = msp.log.stats.appended_records
    assert scanned > 0

    def driver():
        yield 500.0
        result = yield from session.call("counter", b"")
        return int.from_bytes(result.payload, "big")

    p = sim.spawn(driver())
    sim.run_until_process(p, limit=600_000)
    assert p.result == 41  # exactly-once across the crash


def test_checkpoint_truncates_log_to_anchored_min_lsn():
    """Each anchored MSP checkpoint advances the truncation floor to its
    own minimal LSN and recycles the segments below it."""
    config = RecoveryConfig(
        session_ckpt_threshold_bytes=4096,
        msp_ckpt_interval_ms=50.0,
        sv_ckpt_write_threshold=8,
        log_segment_bytes=2048,
    )
    sim, msp, client = build(config=config)
    drive(sim, msp, client, 40)
    store = msp.store
    anchor = msp.log.read_anchor()
    assert anchor is not None
    record, _ = msp.log.record_at(anchor)
    assert isinstance(record, MspCheckpointRecord)
    assert store.truncate_lsn == record.min_lsn(anchor)
    assert store.recycled_segments > 0
    assert store.live_bytes < store.end


def test_truncation_disabled_keeps_whole_log():
    config = RecoveryConfig(
        session_ckpt_threshold_bytes=4096,
        msp_ckpt_interval_ms=50.0,
        sv_ckpt_write_threshold=8,
        log_segment_bytes=2048,
        log_truncation=False,
    )
    sim, msp, client = build(config=config)
    drive(sim, msp, client, 40)
    store = msp.store
    assert store.truncate_lsn == 0
    assert store.recycled_segments == 0
    assert store.live_bytes == store.end
    # The whole log stays readable from offset 0.
    assert records_of(msp, MspCheckpointRecord)


def test_crash_before_anchor_flush_keeps_previous_floor():
    """A checkpoint whose anchor was staged but not yet durable must not
    advance the floor past what the *previous* durable anchor justifies:
    recovery reads the old anchor, so the old min_lsn must be readable."""
    config = RecoveryConfig(
        session_ckpt_threshold_bytes=4096,
        msp_ckpt_interval_ms=50.0,
        sv_ckpt_write_threshold=8,
        log_segment_bytes=2048,
    )
    sim, msp, client = build(config=config)
    drive(sim, msp, client, 40)
    floor_before = msp.store.truncate_lsn
    # Stage a new (higher) anchor without flushing it, then crash.
    msp.store.write_anchor(msp.store.durable_end.to_bytes(8, "big"))
    msp.crash()
    # The floor is whatever the last *anchored* checkpoint justified.
    assert msp.store.truncate_lsn == floor_before
    boot = msp.restart_process()
    sim.run_until_process(boot, limit=600_000)
    anchor = msp.log.read_anchor()
    record, _ = msp.log.record_at(anchor)
    assert record.min_lsn(anchor) >= floor_before


def test_recovery_from_checkpoint_equals_full_replay():
    """Checkpoint equivalence: state recovered via checkpoint + suffix
    replay matches state recovered by full replay."""
    outcomes = {}
    for threshold in (2048, None):
        config = RecoveryConfig(session_ckpt_threshold_bytes=threshold)
        sim, msp, client = build(config=config)
        results, session = drive(sim, msp, client, 25)
        msp.crash()
        msp.restart_process()

        def driver():
            yield 500.0
            result = yield from session.call("counter", b"")
            return int.from_bytes(result.payload, "big")

        p = sim.spawn(driver())
        sim.run_until_process(p, limit=600_000)
        outcomes[threshold] = (
            p.result,
            int.from_bytes(msp.shared["total"].value, "big"),
        )
    assert outcomes[2048] == outcomes[None] == (26, 26)
