"""Unit tests for service domains and message payloads."""

import pytest

from repro.core.domain import ServiceDomainConfig
from repro.core.dv import DependencyVector, StateId
from repro.core.messages import (
    FlushReply,
    FlushRequest,
    RecoveryAnnouncement,
    Reply,
    Request,
)


def test_same_domain_membership():
    domains = ServiceDomainConfig([["a", "b"], ["c"]])
    assert domains.same_domain("a", "b")
    assert domains.same_domain("b", "a")
    assert not domains.same_domain("a", "c")
    assert not domains.same_domain("a", "client")
    assert not domains.same_domain("client", "a")


def test_domain_of_and_peers():
    domains = ServiceDomainConfig([["a", "b", "c"]])
    assert domains.domain_of("a") == frozenset({"a", "b", "c"})
    assert domains.peers_of("a") == frozenset({"b", "c"})
    assert domains.domain_of("zzz") is None
    assert domains.peers_of("zzz") == frozenset()


def test_domains_must_be_disjoint():
    with pytest.raises(ValueError):
        ServiceDomainConfig([["a", "b"], ["b", "c"]])


def test_empty_domain_rejected():
    with pytest.raises(ValueError):
        ServiceDomainConfig([[]])


def test_all_separate():
    domains = ServiceDomainConfig.all_separate()
    assert not domains.same_domain("a", "b")
    assert domains.domain_of("a") is None


def test_request_wire_size_includes_dv():
    dv = DependencyVector()
    dv.observe("p", StateId(0, 1))
    base = Request("s", 0, "m", b"x" * 100, reply_to="c", reply_port="r")
    with_dv = Request("s", 0, "m", b"x" * 100, reply_to="c", reply_port="r", sender_dv=dv)
    assert with_dv.wire_size() > base.wire_size()
    assert base.wire_size() >= 100


def test_reply_wire_size():
    small = Reply("s", 0, b"")
    big = Reply("s", 0, b"x" * 1000)
    assert big.wire_size() - small.wire_size() == 1000


def test_flush_request_ids_unique():
    a, b = FlushRequest(), FlushRequest()
    assert a.req_id != b.req_id
    assert FlushReply(req_id=a.req_id, ok=True).wire_size() > 0


def test_announcement_size_scales_with_table():
    small = RecoveryAnnouncement("m", 0, 10, table_snapshot={})
    big = RecoveryAnnouncement(
        "m", 0, 10, table_snapshot={"a": {0: 1, 1: 2}, "b": {0: 3}}
    )
    assert big.wire_size() > small.wire_size()


def test_members_collects_every_routed_msp():
    domains = ServiceDomainConfig([["a", "b"], ["c"]])
    assert domains.members() == frozenset({"a", "b", "c"})
    assert ServiceDomainConfig().members() == frozenset()


def test_validate_members_accepts_known_supersets():
    domains = ServiceDomainConfig([["a", "b"], ["c"]])
    domains.validate_members({"a", "b", "c"})
    domains.validate_members({"a", "b", "c", "d"})


def test_validate_members_rejects_unknown_msps():
    domains = ServiceDomainConfig([["a", "b"], ["c", "zzz"]])
    with pytest.raises(ValueError, match="unknown MSPs: zzz"):
        domains.validate_members({"a", "b", "c"})


def test_mega_domain_every_pair_is_optimistic():
    names = [f"m{i}" for i in range(16)]
    domains = ServiceDomainConfig([names])
    for a in names:
        for b in names:
            if a != b:
                assert domains.same_domain(a, b)
        assert domains.peers_of(a) == frozenset(names) - {a}


def test_msp_outside_every_domain_is_pessimistic():
    domains = ServiceDomainConfig([["a", "b"]])
    assert domains.domain_of("lone") is None
    assert not domains.same_domain("lone", "a")
    assert not domains.same_domain("lone", "lone")
    assert domains.peers_of("lone") == frozenset()
