"""Tests for the access-order-logging ablation (paper §3.3's rejected
alternative [16]).

Access-order logging records only per-variable access sequence numbers;
recovery reconstructs shared state by re-executing every session's
accesses in the logged order.  Correctness must still hold — the paper
rejects it for its *coupling*, not for being wrong.
"""

import pytest

from repro.core import RecoveryConfig, ServiceDomainConfig
from repro.core.client import EndClient
from repro.core.errors import SessionProtocolError
from repro.core.msp import MiddlewareServer
from repro.core.records import SvOrderRecord
from repro.net import Network
from repro.sim import RngRegistry, Simulator


def access_order_config():
    return RecoveryConfig(
        sv_logging="access-order",
        session_ckpt_threshold_bytes=None,
        sv_ckpt_write_threshold=10**9,
    )


def bump_method(ctx, argument):
    yield from ctx.compute(0.1)
    new = yield from ctx.update_shared(
        "total", lambda raw: (int.from_bytes(raw, "big") + 1).to_bytes(8, "big")
    )
    return new


def read_method(ctx, argument):
    yield from ctx.compute(0.05)
    value = yield from ctx.read_shared("total")
    return value


def build(config=None, seed=0):
    sim = Simulator()
    rng = RngRegistry(seed)
    net = Network(sim, rng=rng)
    msp = MiddlewareServer(
        sim, net, "server", ServiceDomainConfig(),
        config=config or access_order_config(), rng=rng,
    )
    msp.register_service("bump", bump_method)
    msp.register_service("read", read_method)
    msp.register_shared("total", (0).to_bytes(8, "big"))
    client = EndClient(sim, net, "client")
    return sim, msp, client


def test_guard_rejects_domains():
    sim = Simulator()
    net = Network(sim, rng=RngRegistry(0))
    domains = ServiceDomainConfig([["a", "b"]])
    msp = MiddlewareServer(sim, net, "a", domains, config=access_order_config())
    boot = msp.start_process()
    sim.run_until_process(boot, limit=10_000)
    with pytest.raises(SessionProtocolError, match="service domain"):
        boot.result


def test_guard_rejects_checkpointing():
    sim = Simulator()
    net = Network(sim, rng=RngRegistry(0))
    config = RecoveryConfig(sv_logging="access-order")  # ckpts still on
    msp = MiddlewareServer(sim, net, "a", ServiceDomainConfig(), config=config)
    boot = msp.start_process()
    sim.run_until_process(boot, limit=10_000)
    with pytest.raises(SessionProtocolError, match="checkpointing"):
        boot.result


def test_normal_execution_logs_order_records():
    sim, msp, client = build()
    msp.start_process()
    session = client.open_session("server")

    def driver():
        yield 1.0
        for _ in range(3):
            yield from session.call("bump", b"")

    p = sim.spawn(driver())
    sim.run_until_process(p, limit=60_000)
    orders = []
    offset = 0
    while offset < msp.store.end:
        record, offset = msp.log.record_at(offset)
        if isinstance(record, SvOrderRecord):
            orders.append(record)
    assert [o.version for o in orders] == [1, 2, 3]
    assert all(o.is_write for o in orders)
    assert msp.shared["total"].write_seq == 3


def test_exactly_once_across_crash():
    sim, msp, client = build()
    msp.start_process()
    session = client.open_session("server")
    results = []

    def driver():
        yield 1.0
        for i in range(10):
            result = yield from session.call("bump", b"")
            results.append(int.from_bytes(result.payload, "big"))
            if i == 4:
                msp.crash()
                msp.restart_process()

    p = sim.spawn(driver())
    sim.run_until_process(p, limit=600_000)
    assert results == list(range(1, 11))
    assert int.from_bytes(msp.shared["total"].value, "big") == 10


def test_interleaved_sessions_reconstruct_total_order():
    """Two sessions interleave increments; after a crash the variable is
    reconstructed by re-executing both in the logged order."""
    sim, msp, client = build()
    msp.start_process()
    a = client.open_session("server")
    b = client.open_session("server")

    def driver(session, n):
        yield 1.0
        for _ in range(n):
            yield from session.call("bump", b"")

    pa = sim.spawn(driver(a, 6))
    pb = sim.spawn(driver(b, 6))
    sim.run_until_process(pa, limit=600_000)
    sim.run_until_process(pb, limit=600_000)
    assert int.from_bytes(msp.shared["total"].value, "big") == 12

    msp.crash()
    boot = msp.restart_process()
    sim.run_until_process(boot, limit=600_000)

    def reader():
        yield 2_000.0  # give the coupled replays time to finish
        result = yield from a.call("read", b"")
        return int.from_bytes(result.payload, "big")

    p = sim.spawn(reader())
    sim.run_until_process(p, limit=600_000)
    assert p.result == 12


def test_live_access_blocks_until_reconstructed():
    """A new request touching the variable during recovery waits for the
    re-execution to finish — the §3.3 blocking the paper warns about."""
    sim, msp, client = build()
    msp.start_process()
    session = client.open_session("server")

    def driver():
        yield 1.0
        for _ in range(8):
            yield from session.call("bump", b"")

    p = sim.spawn(driver())
    sim.run_until_process(p, limit=600_000)
    msp.crash()
    msp.restart_process()

    fresh = client.open_session("server")

    def prober():
        yield 60.0  # server is up again but still replaying
        result = yield from fresh.call("read", b"")
        return int.from_bytes(result.payload, "big"), sim.now

    probe = sim.spawn(prober())
    sim.run_until_process(probe, limit=600_000)
    value, _when = probe.result
    # The read never observed a half-reconstructed counter.
    assert value == 8


def test_value_mode_unaffected():
    """The default value-logging path is untouched by the ablation."""
    sim, msp, client = build(config=RecoveryConfig())
    msp.start_process()
    session = client.open_session("server")

    def driver():
        yield 1.0
        for _ in range(4):
            yield from session.call("bump", b"")

    p = sim.spawn(driver())
    sim.run_until_process(p, limit=600_000)
    assert int.from_bytes(msp.shared["total"].value, "big") == 4
    assert msp.shared["total"].write_seq == 0  # counter unused
