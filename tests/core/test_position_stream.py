"""Tests for per-session position streams."""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.core.position_stream import PositionStream
from repro.sim import Simulator
from repro.storage import Disk


def test_append_and_positions():
    ps = PositionStream("s1")
    for lsn in [10, 20, 30]:
        ps.append(lsn)
    assert ps.positions() == [10, 20, 30]
    assert len(ps) == 3


def test_append_signals_full_buffer():
    ps = PositionStream("s1", buffer_capacity=2)
    assert ps.append(1) is False
    assert ps.append(2) is True


def test_spill_moves_to_persistent():
    sim = Simulator()
    disk = Disk(sim, rng=random.Random(0))
    ps = PositionStream("s1", buffer_capacity=2)
    ps.append(1)
    ps.append(2)

    def run():
        yield from ps.spill(disk)

    sim.run_process(run())
    assert disk.stats.writes == 1
    ps.crash()  # buffer loss must not affect spilled positions
    assert ps.positions() == [1, 2]


def test_crash_loses_buffer_only():
    ps = PositionStream("s1", buffer_capacity=2)
    ps.append(1)
    ps.append(2)
    list(ps.spill(None))  # no disk: spill instantly
    ps.append(3)
    ps.crash()
    assert ps.positions() == [1, 2]


def test_truncate_resets():
    ps = PositionStream("s1")
    ps.append(1)
    ps.truncate()
    assert len(ps) == 0


def test_remove_from_threshold():
    ps = PositionStream("s1")
    for lsn in [5, 10, 15, 20]:
        ps.append(lsn)
    removed = ps.remove_from(12)
    assert removed == [15, 20]
    assert ps.positions() == [5, 10]


def test_remove_from_covers_embedded_ranges():
    """Fig. 11 embedded case: removing from orphan2 also drops the
    records between an earlier (orphan1, EOS1) pair."""
    ps = PositionStream("s1")
    for lsn in [10, 20, 30, 40, 50]:
        ps.append(lsn)
    ps.remove_from(40)  # first orphan recovery
    ps.append(60)
    ps.remove_from(20)  # second, embedding the first
    assert ps.positions() == [10]


def test_replace_installs_reconstruction():
    ps = PositionStream("s1")
    ps.append(99)
    ps.replace([1, 2, 3])
    assert ps.positions() == [1, 2, 3]


@given(st.lists(st.integers(min_value=0, max_value=1000), unique=True), st.integers(0, 1000))
def test_remove_from_property(lsns, threshold):
    ps = PositionStream("s")
    ordered = sorted(lsns)
    for lsn in ordered:
        ps.append(lsn)
    removed = ps.remove_from(threshold)
    assert removed == [p for p in ordered if p >= threshold]
    assert ps.positions() == [p for p in ordered if p < threshold]
