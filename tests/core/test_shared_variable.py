"""Unit tests for shared variables: chains, rollback, bookkeeping."""

import random

import pytest

from repro.core.dv import DependencyVector, RecoveryTable, StateId
from repro.core.log_manager import LogManager
from repro.core.records import NO_LSN, SvCheckpointRecord, SvWriteRecord
from repro.core.shared_variable import SharedVariable
from repro.sim import ProcessGroup, Simulator
from repro.storage import Disk, StableStore


def make_env():
    sim = Simulator()
    store = StableStore()
    disk = Disk(sim, rng=random.Random(0))
    log = LogManager(sim, store, disk)
    log.start(group=ProcessGroup("t"))
    return sim, log


def dv_of(*entries):
    dv = DependencyVector()
    for msp, epoch, lsn in entries:
        dv.observe(msp, StateId(epoch, lsn))
    return dv


def write(log, sv, value, writer_dv):
    """Append a write record and apply it, like the context does."""
    record = SvWriteRecord(
        session_id="s",
        variable=sv.name,
        value=value,
        writer_dv=writer_dv,
        prev_write_lsn=sv.last_write_lsn,
    )
    lsn, _ = log.append(record)
    sv.apply_write(lsn, value, writer_dv)
    return lsn


def test_initial_state():
    sim, _log = make_env()
    sv = SharedVariable(sim, "v", b"init")
    assert sv.value == b"init"
    assert sv.last_write_lsn == NO_LSN
    assert sv.state_lsn is None
    assert sv.scan_start_lsn() is None


def test_apply_write_bookkeeping():
    sim, log = make_env()
    sv = SharedVariable(sim, "v", b"init")
    dv = dv_of(("p", 0, 5))
    lsn = write(log, sv, b"one", dv)
    assert sv.value == b"one"
    assert sv.state_lsn == lsn
    assert sv.last_write_lsn == lsn
    assert sv.first_write_lsn == lsn
    assert sv.writes_since_ckpt == 1
    assert sv.dv == dv
    # The DV is replaced by a copy: mutating the source must not leak.
    dv.observe("q", StateId(0, 1))
    assert sv.dv != dv


def test_apply_checkpoint_breaks_chain():
    sim, log = make_env()
    sv = SharedVariable(sim, "v", b"init")
    write(log, sv, b"one", dv_of(("p", 0, 5)))
    ckpt_lsn, _ = log.append(SvCheckpointRecord(variable="v", value=sv.value))
    sv.apply_checkpoint(ckpt_lsn)
    assert sv.writes_since_ckpt == 0
    assert sv.last_ckpt_lsn == ckpt_lsn
    assert sv.last_write_lsn == ckpt_lsn
    assert not sv.dv
    assert sv.scan_start_lsn() == ckpt_lsn


def test_orphan_detection_uses_table():
    sim, _log = make_env()
    sv = SharedVariable(sim, "v", b"init")
    sv.dv = dv_of(("p", 0, 100))
    table = RecoveryTable()
    assert not sv.is_orphan(table)
    table.record("p", 0, 50)
    assert sv.is_orphan(table)


def test_rollback_to_most_recent_non_orphan_write():
    sim, log = make_env()
    sv = SharedVariable(sim, "v", b"init")
    good_lsn = write(log, sv, b"good", dv_of(("p", 0, 10)))
    write(log, sv, b"bad1", dv_of(("p", 0, 60)))
    write(log, sv, b"bad2", dv_of(("p", 0, 80)))
    table = RecoveryTable()
    table.record("p", 0, 50)  # 60 and 80 lost; 10 survived

    def run():
        hops = yield from sv.roll_back(log, table)
        return hops

    hops = sim.run_process(run())
    assert sv.value == b"good"
    assert sv.last_write_lsn == good_lsn
    assert hops == 2
    assert not table.is_orphan(sv.dv)


def test_rollback_stops_at_checkpoint():
    sim, log = make_env()
    sv = SharedVariable(sim, "v", b"init")
    write(log, sv, b"old", dv_of(("p", 0, 10)))
    ckpt_lsn, _ = log.append(SvCheckpointRecord(variable="v", value=b"checkpointed"))
    sv.apply_checkpoint(ckpt_lsn)
    sv.value = b"checkpointed"
    write(log, sv, b"orphaned", dv_of(("p", 0, 99)))
    table = RecoveryTable()
    table.record("p", 0, 50)

    sim.run_process(sv.roll_back(log, table))
    assert sv.value == b"checkpointed"
    assert sv.last_write_lsn == ckpt_lsn
    assert not sv.dv


def test_rollback_to_initial_value_when_chain_exhausted():
    sim, log = make_env()
    sv = SharedVariable(sim, "v", b"init")
    write(log, sv, b"bad", dv_of(("p", 0, 99)))
    table = RecoveryTable()
    table.record("p", 0, 50)

    sim.run_process(sv.roll_back(log, table))
    assert sv.value == b"init"
    assert sv.last_write_lsn == NO_LSN
    assert sv.state_lsn is None


def test_rollback_charges_log_reads():
    sim, log = make_env()
    sv = SharedVariable(sim, "v", b"init")
    for i in range(5):
        write(log, sv, f"v{i}".encode(), dv_of(("p", 0, 90 + i)))
    table = RecoveryTable()
    table.record("p", 0, 50)
    reads_before = log.disk.stats.reads
    sim.run_process(sv.roll_back(log, table))
    assert log.disk.stats.reads > reads_before


def test_rollback_keeps_new_epoch_writes():
    """A dependency on epoch 1 is not an orphan of the epoch-0 crash."""
    sim, log = make_env()
    sv = SharedVariable(sim, "v", b"init")
    write(log, sv, b"fresh", dv_of(("p", 1, 5)))
    table = RecoveryTable()
    table.record("p", 0, 50)

    sim.run_process(sv.roll_back(log, table))
    assert sv.value == b"fresh"
