"""End-to-end integration: clients, MSPs, logging, no crashes yet."""

import pytest

from repro.core import LoggingMode, RecoveryConfig, ServiceDomainConfig
from repro.core.client import EndClient
from repro.core.msp import MiddlewareServer
from repro.net import Network
from repro.sim import RngRegistry, Simulator


def counter_method(ctx, argument):
    """Increments a session counter and a shared counter."""
    yield from ctx.compute(0.2)
    raw = yield from ctx.get_session_var("count")
    count = int.from_bytes(raw or b"\x00", "big") + 1
    yield from ctx.set_session_var("count", count.to_bytes(4, "big"))
    shared_raw = yield from ctx.read_shared("total")
    total = int.from_bytes(shared_raw, "big") + 1
    yield from ctx.write_shared("total", total.to_bytes(8, "big"))
    return count.to_bytes(4, "big")


def build_world(mode=LoggingMode.RECOVERABLE, domains=None, seed=0):
    sim = Simulator()
    rng = RngRegistry(seed)
    net = Network(sim, rng=rng)
    domains = domains or ServiceDomainConfig()
    config = RecoveryConfig(mode=mode)
    msp = MiddlewareServer(sim, net, "msp1", domains, config=config, rng=rng)
    msp.register_service("counter", counter_method)
    msp.register_shared("total", (0).to_bytes(8, "big"))
    client = EndClient(sim, net, "client1")
    return sim, net, msp, client


def run_calls(sim, msp, client, n):
    msp.start_process()
    session = client.open_session("msp1")
    results = []

    def driver():
        yield 1.0  # let the server boot
        for _ in range(n):
            result = yield from session.call("counter", b"x" * 100)
            results.append(result)

    sim.spawn(driver())
    sim.run(until=60_000)
    return results, session


def test_single_request_reply():
    sim, _net, msp, client = build_world()
    results, _ = run_calls(sim, msp, client, 1)
    assert len(results) == 1
    assert int.from_bytes(results[0].payload, "big") == 1
    assert results[0].response_time_ms > 0
    assert msp.stats.requests_processed == 1


def test_sequence_of_requests_counts_up():
    sim, _net, msp, client = build_world()
    results, _ = run_calls(sim, msp, client, 10)
    assert [int.from_bytes(r.payload, "big") for r in results] == list(range(1, 11))
    total = int.from_bytes(msp.shared["total"].value, "big")
    assert total == 10


def test_nolog_mode_works_and_is_faster():
    sim1, _n1, msp1, client1 = build_world(mode=LoggingMode.RECOVERABLE)
    run_calls(sim1, msp1, client1, 20)
    recoverable_mean = client1.stats.mean_response_ms

    sim2, _n2, msp2, client2 = build_world(mode=LoggingMode.NOLOG)
    run_calls(sim2, msp2, client2, 20)
    nolog_mean = client2.stats.mean_response_ms

    assert nolog_mean < recoverable_mean
    assert msp2.store.end == 0  # nothing was logged


def test_logging_produces_records():
    sim, _net, msp, client = build_world()
    run_calls(sim, msp, client, 5)
    # Per request: 1 request record + 1 SV read + 1 SV write.
    assert msp.log.stats.appended_records >= 15


def test_pessimistic_reply_flushes_before_send():
    """Client is cross-domain: every reply is preceded by a log flush."""
    sim, _net, msp, client = build_world()
    run_calls(sim, msp, client, 5)
    assert msp.log.stats.physical_flushes >= 5
    # Every record is durable once its reply went out.
    assert msp.store.unflushed_bytes == 0 or msp.store.durable_end > 0


def test_duplicate_request_served_from_buffered_reply():
    sim, net, msp, client = build_world()
    msp.start_process()
    session = client.open_session("msp1")
    outcome = {}

    def driver():
        yield 1.0
        first = yield from session.call("counter", b"")
        # Simulate a lost reply: resend the same request manually.
        request_payloads = []

        from repro.core.messages import Request

        dup = Request(
            session_id=session.id,
            seq=0,
            method="counter",
            argument=b"",
            reply_to=client.name,
            reply_port=session._reply_port,
        )
        client.node.send("msp1", "request", dup, dup.wire_size())
        yield 50.0
        envelope = session._inbox.drain()
        outcome["first"] = first
        outcome["dup_replies"] = envelope

    sim.spawn(driver())
    sim.run(until=10_000)
    # The duplicate was answered from the buffered reply with the same
    # payload, and the method did NOT execute again.
    assert msp.stats.requests_processed == 1
    assert msp.stats.buffered_reply_resends == 1
    dup_replies = outcome["dup_replies"]
    assert len(dup_replies) == 1
    assert dup_replies[0].payload.payload == outcome["first"].payload


def test_out_of_order_request_dropped():
    sim, net, msp, client = build_world()
    boot = msp.start_process()
    sim.run_until_process(boot, limit=10_000)

    def driver():
        yield 1.0
        from repro.core.messages import Request

        future = Request(
            session_id="client1#0",
            seq=5,
            method="counter",
            argument=b"",
            reply_to=client.name,
            reply_port="reply:client1#0",
        )
        client.node.bind("reply:client1#0")
        client.node.send("msp1", "request", future, future.wire_size())
        yield 50.0

    sim.spawn(driver())
    sim.run(until=1_000)
    assert msp.stats.requests_out_of_order == 1
    assert msp.stats.requests_processed == 0


def test_end_session_logs_marker_and_removes_session():
    sim, _net, msp, client = build_world()
    msp.start_process()
    session = client.open_session("msp1")

    def driver():
        yield 1.0
        yield from session.call("counter", b"")
        yield from session.end()

    sim.spawn(driver())
    sim.run(until=10_000)
    assert session.id not in msp.sessions


def test_message_loss_is_masked_by_resends():
    from repro.net import FaultModel

    sim, net, msp, client = build_world(seed=11)
    net.set_link("client1", "msp1", faults=FaultModel(loss_prob=0.2))
    results, _ = run_calls(sim, msp, client, 20)
    assert len(results) == 20
    # Exactly-once despite the resends.
    assert int.from_bytes(msp.shared["total"].value, "big") == 20
    assert client.stats.resends > 0


def test_message_duplication_is_masked():
    from repro.net import FaultModel

    sim, net, msp, client = build_world(seed=13)
    net.set_link("client1", "msp1", faults=FaultModel(duplicate_prob=0.3))
    results, _ = run_calls(sim, msp, client, 20)
    assert len(results) == 20
    assert int.from_bytes(msp.shared["total"].value, "big") == 20
    assert msp.stats.requests_processed == 20


def test_thread_pool_concurrency_across_sessions():
    """Requests on different sessions are served concurrently."""
    sim, _net, msp, client = build_world()
    msp.start_process()
    sessions = [client.open_session("msp1") for _ in range(4)]
    finished = []

    def driver(s):
        yield 1.0
        result = yield from s.call("counter", b"")
        finished.append(sim.now)

    for s in sessions:
        sim.spawn(driver(s))
    sim.run(until=10_000)
    assert len(finished) == 4
    # With 4 concurrent sessions the total elapsed time is far below 4x
    # a single call (disk flushes and CPU overlap).
    solo_sim, _n, solo_msp, solo_client = build_world()
    solo_results, _ = run_calls(solo_sim, solo_msp, solo_client, 1)
    solo_time = solo_results[0].response_time_ms
    assert max(finished) - 1.0 < 3 * solo_time
