"""Transitive dependency propagation across a three-MSP chain.

Paper Fig. 5: p1 -> p2 -> p3.  The DV is transitive — "LSNs from all
processes on which a sender depends are sent with its message" — so when
p1 crashes and loses state, p3 must detect it is an orphan even though
p3 never exchanged a message with p1 directly.
"""

import pytest

from repro.core import RecoveryConfig, ServiceDomainConfig
from repro.core.client import EndClient
from repro.core.msp import MiddlewareServer
from repro.net import Network
from repro.sim import RngRegistry, Simulator


def encode(n):
    return n.to_bytes(8, "big")


def decode(raw):
    return int.from_bytes(raw, "big")


class ChainCrash:
    """Kill p1 2 ms after its Nth execution (deterministic state loss)."""

    def __init__(self, after):
        self.after = after
        self.seen = 0
        self.target = None
        self.fired = False

    def on_p1_executed(self):
        self.seen += 1
        if not self.fired and self.seen >= self.after:
            self.fired = True
            self.target.sim.call_later(2.0, self._kill)

    def _kill(self):
        if self.target.running:
            self.target.crash()
            self.target.restart_process()


def build(crash_after=None, seed=0):
    sim = Simulator()
    rng = RngRegistry(seed)
    net = Network(sim, rng=rng)
    domains = ServiceDomainConfig([["p1", "p2", "p3"]])
    p1 = MiddlewareServer(sim, net, "p1", domains, config=RecoveryConfig(), rng=rng)
    p2 = MiddlewareServer(sim, net, "p2", domains, config=RecoveryConfig(), rng=rng)
    p3 = MiddlewareServer(sim, net, "p3", domains, config=RecoveryConfig(), rng=rng)
    controller = ChainCrash(crash_after or 10**9)
    controller.target = p1

    def p1_source(ctx, argument):
        """The origin of the data everyone transitively depends on."""
        yield from ctx.compute(0.1)
        new = yield from ctx.update_shared(
            "origin", lambda raw: encode(decode(raw) + 1)
        )
        if not ctx.is_replay:
            controller.on_p1_executed()
        return new

    def p2_middle(ctx, argument):
        """p2 pulls from p1 and stores locally; p3 pulls from p2."""
        yield from ctx.compute(0.1)
        value = yield from ctx.call("p1", "source", argument)
        yield from ctx.write_shared("cache", value)
        return value

    def p3_sink(ctx, argument):
        yield from ctx.compute(0.1)
        value = yield from ctx.call("p2", "middle", argument)
        raw = yield from ctx.get_session_var("n")
        n = decode(raw or encode(0)) + 1
        yield from ctx.set_session_var("n", encode(n))
        return value + b"|" + encode(n)

    p1.register_service("source", p1_source)
    p1.register_shared("origin", encode(0))
    p2.register_service("middle", p2_middle)
    p2.register_shared("cache", encode(0))
    p3.register_service("sink", p3_sink)
    for msp in (p1, p2, p3):
        msp.start_process()
    client = EndClient(sim, net, "client")
    return sim, p1, p2, p3, client


def test_dv_propagates_transitively():
    """After one chained request, p3's session depends on p1 and p2."""
    sim, p1, p2, p3, client = build()
    session = client.open_session("p3")

    def driver():
        yield 1.0
        yield from session.call("sink", b"")

    p = sim.spawn(driver())
    sim.run_until_process(p, limit=600_000)
    # p3's serving session merged p2's reply DV, which transitively
    # carries p1's entry (paper Fig. 5).
    server_session = p3.sessions[session.id]
    # The reply to the cross-domain client pruned what was flushed, so
    # look at the logged reply record instead.
    from repro.core.records import ReplyRecord

    offset = 0
    reply_dvs = []
    while offset < p3.store.end:
        record, offset = p3.log.record_at(offset)
        if isinstance(record, ReplyRecord) and record.sender_dv is not None:
            reply_dvs.append(record.sender_dv)
    assert reply_dvs, "expected an intra-domain reply with a DV at p3"
    assert any("p1" in dv.msps() and "p2" in dv.msps() for dv in reply_dvs)


def test_p1_crash_orphans_p3_transitively():
    """p1 dies right after producing a value that flowed to p3; p3's
    session must roll back even though it never talked to p1."""
    sim, p1, p2, p3, client = build(crash_after=4)
    session = client.open_session("p3")
    results = []

    def driver():
        yield 1.0
        for _ in range(8):
            result = yield from session.call("sink", b"")
            value, n = result.payload.split(b"|")
            results.append((decode(value), decode(n)))

    p = sim.spawn(driver())
    sim.run_until_process(p, limit=1_200_000)
    # Exactly-once end to end: the origin counter and p3's session
    # counter both advanced once per request.
    assert [n for _v, n in results] == list(range(1, 9))
    assert [v for v, _n in results] == list(range(1, 9))
    assert decode(p1.shared["origin"].value) == 8
    # The crash rolled back dependents transitively.
    assert p2.stats.orphan_recoveries + p3.stats.orphan_recoveries >= 1


def test_chain_survives_middle_crash_too():
    sim, p1, p2, p3, client = build(seed=3)
    session = client.open_session("p3")
    results = []

    def driver():
        yield 1.0
        for i in range(8):
            result = yield from session.call("sink", b"")
            value, _n = result.payload.split(b"|")
            results.append(decode(value))
            if i == 3:
                p2.crash()
                p2.restart_process()

    p = sim.spawn(driver())
    sim.run_until_process(p, limit=1_200_000)
    assert results == list(range(1, 9))
    assert decode(p1.shared["origin"].value) == 8
