"""Command/value adaptive logging (DESIGN.md §16) unit tests.

Covers the pieces the end-to-end suites exercise only indirectly:

- :class:`SharedVariable` command bookkeeping — the ``(lsn, ordinal)``
  frontier pairs, the ``uncaptured_commands`` seal, the in-memory undo
  history and its interaction with orphan rollback;
- command replay re-execution — the frontier guard that makes re-applies
  idempotent, and divergence detection when a handler violates the
  determinism contract (raises instead of silently corrupting state);
- the regime barrier — a value-logged write on a variable carrying
  unlogged command effects checkpoints it first.
"""

import pytest

from repro.core import RecoveryConfig, ServiceDomainConfig
from repro.core.client import EndClient
from repro.core.context import NormalContext
from repro.core.dv import DependencyVector, RecoveryTable, StateId
from repro.core.errors import SessionProtocolError
from repro.core.msp import MiddlewareServer
from repro.core.records import NO_LSN, CommandRecord, SvWriteRecord
from repro.core.replay import run_session_recovery
from repro.core.shared_variable import SharedVariable
from repro.net import Network
from repro.sim import RngRegistry, Simulator


def build_msp(logging_mode="command"):
    sim = Simulator()
    rng = RngRegistry(0)
    net = Network(sim, rng=rng)
    msp = MiddlewareServer(
        sim,
        net,
        "server",
        ServiceDomainConfig(),
        config=RecoveryConfig(logging_mode=logging_mode),
        rng=rng,
    )
    msp.register_shared("v", b"init")
    msp.register_shared("w", b"init")
    msp.register_shared("total", b"")
    boot = msp.start_process()
    sim.run_until_process(boot, limit=60_000)
    return sim, msp


def drive(gen):
    """Exhaust a sim generator synchronously, returning its value."""
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        return stop.value


# -- SharedVariable bookkeeping -------------------------------------------


def test_apply_command_write_tracks_frontier_not_chain():
    sim = Simulator()
    sv = SharedVariable(sim, "v", b"0")
    sv.track_history = True
    dv = DependencyVector()
    dv.observe("MSP1", StateId(0, 10))

    sv.apply_command_write(100, 0, b"1", dv, "s")
    assert sv.value == b"1"
    assert sv.command_frontier == {"s": (100, 0)}
    assert sv.uncaptured_commands
    # No record backs the apply: the backward chain must be untouched.
    assert sv.last_write_lsn == NO_LSN
    assert sv.live_chain_floors == {}
    assert len(sv.history) == 1

    # A second apply from the same command advances the ordinal half.
    sv.apply_command_write(100, 1, b"2", dv, "s")
    assert sv.command_frontier == {"s": (100, 1)}
    assert len(sv.history) == 2


def test_apply_checkpoint_seals_command_effects():
    sim = Simulator()
    sv = SharedVariable(sim, "v", b"0")
    sv.track_history = True
    sv.apply_command_write(100, 0, b"1", DependencyVector(), "s")

    sv.apply_checkpoint(200)
    assert not sv.uncaptured_commands
    # The checkpoint captured the frontier: rollback past the history
    # reverts to it, not to empty.
    assert sv._frontier_floor == {"s": (100, 0)}
    assert sv.command_frontier == {"s": (100, 0)}
    assert sv.history == []
    assert sv.last_ckpt_lsn == 200


def test_rollback_pops_orphan_history_tail():
    sim = Simulator()
    sv = SharedVariable(sim, "v", b"0")
    sv.track_history = True
    clean_dv = DependencyVector()  # no dependencies: never an orphan
    orphan_dv = DependencyVector()
    orphan_dv.observe("OTHER", StateId(0, 500))

    sv.apply_command_write(100, 0, b"clean", clean_dv, "s")
    sv.apply_command_write(110, 0, b"poisoned", orphan_dv, "s2")

    table = RecoveryTable()
    table.record("OTHER", 0, 400)  # epoch 0 recovered to 400: LSN 500 lost

    hops = drive(sv.roll_back(None, table))
    assert hops == 1
    assert sv.value == b"clean"
    assert sv.command_frontier == {"s": (100, 0)}
    assert sv.uncaptured_commands
    # The surviving snapshot stays on the stack for future rollbacks.
    assert len(sv.history) == 1


def test_rollback_exhausted_history_reverts_to_frontier_floor():
    sim = Simulator()
    sv = SharedVariable(sim, "v", b"genesis")
    sv.track_history = True
    sv.apply_command_write(90, 0, b"captured", DependencyVector(), "s")
    sv.apply_checkpoint(95)
    floor = dict(sv.command_frontier)

    orphan_dv = DependencyVector()
    orphan_dv.observe("OTHER", StateId(0, 500))
    sv.apply_command_write(100, 0, b"poisoned", orphan_dv, "s2")
    # Simulate the checkpoint record itself being lost with the chain:
    # force the logged-chain fallback to the initial value.
    sv.last_write_lsn = NO_LSN

    table = RecoveryTable()
    table.record("OTHER", 0, 400)

    drive(sv.roll_back(None, table))
    assert sv.value == b"genesis"
    assert sv.command_frontier == floor
    assert not sv.uncaptured_commands


# -- command replay ----------------------------------------------------------


def _log_command(msp, session, method="m", argument=b""):
    record = CommandRecord(session.id, 0, method, argument, sender_dv=None)
    lsn, size = msp.log.append(record)
    session.account_record(lsn, size, msp.epoch)
    return lsn


def test_command_replay_reexecutes_rmw():
    sim, msp = build_msp()

    def handler(ctx, argument):
        yield from ctx.update_shared("total", lambda v: v + b"!")
        return b"ok"

    msp.register_service("m", handler)
    session = msp.session_for("s")
    cmd_lsn = _log_command(msp, session)

    p = sim.spawn(run_session_recovery(msp, session, orphan=False))
    sim.run_until_process(p, limit=120_000)
    p.result  # raises if replay failed

    sv = msp.shared["total"]
    assert sv.value == b"!"
    assert sv.command_frontier == {"s": (cmd_lsn, 0)}
    assert session.buffered_reply == b"ok"
    assert session.buffered_reply_seq == 0
    assert session.next_expected_seq == 1
    assert session.logging_mode == "command"
    assert msp.stats.replayed_commands == 1


def test_command_replay_skips_captured_applies():
    """An apply the recovered frontier covers must not run twice."""
    sim, msp = build_msp()

    def handler(ctx, argument):
        yield from ctx.update_shared("total", lambda v: v + b"!")
        return b"ok"

    msp.register_service("m", handler)
    session = msp.session_for("s")
    cmd_lsn = _log_command(msp, session)

    # Simulate a checkpoint that captured the original apply.
    sv = msp.shared["total"]
    sv.value = b"!"
    sv.command_frontier["s"] = (cmd_lsn, 0)

    p = sim.spawn(run_session_recovery(msp, session, orphan=False))
    sim.run_until_process(p, limit=120_000)
    p.result

    assert sv.value == b"!"  # not b"!!": the re-apply was a no-op
    assert session.buffered_reply == b"ok"


def test_nondeterministic_handler_raises_divergence():
    """A handler whose replay takes a different path must raise, not
    silently diverge (the §16 determinism contract is checked)."""
    sim, msp = build_msp()
    target = {"name": "v"}

    def handler(ctx, argument):
        yield from ctx.write_shared(target["name"], b"out")
        return b"ok"

    msp.register_service("m", handler)
    session = msp.session_for("s")
    _log_command(msp, session)
    # The original execution wrote "v" (plain writes stay value-logged
    # even under command mode).
    record = SvWriteRecord("s", "v", b"out", DependencyVector())
    lsn, size = msp.log.append(record)
    session.account_record(lsn, size, msp.epoch)

    target["name"] = "w"  # nondeterminism: replay writes elsewhere
    p = sim.spawn(run_session_recovery(msp, session, orphan=False))
    sim.run_until_process(p, limit=120_000)
    with pytest.raises(SessionProtocolError, match="divergence"):
        p.result


def test_nondeterministic_handler_skipping_access_raises():
    """Replay that performs fewer accesses than logged leaves a stale
    record at the request boundary — also detected."""
    sim, msp = build_msp()
    do_write = {"flag": True}

    def handler(ctx, argument):
        if do_write["flag"]:
            yield from ctx.write_shared("v", b"out")
        yield from ctx.compute(0.01)
        return b"ok"

    msp.register_service("m", handler)
    session = msp.session_for("s")
    _log_command(msp, session)
    record = SvWriteRecord("s", "v", b"out", DependencyVector())
    lsn, size = msp.log.append(record)
    session.account_record(lsn, size, msp.epoch)

    do_write["flag"] = False
    p = sim.spawn(run_session_recovery(msp, session, orphan=False))
    sim.run_until_process(p, limit=120_000)
    with pytest.raises(SessionProtocolError, match="expected a request record"):
        p.result


def test_session_checkpoint_seals_command_effects_before_truncation():
    """Regression (found by the command-mode fuzz battery): a session
    checkpoint used to truncate the replay stream past CommandRecords
    whose SV effects no checkpoint had captured — after the next crash
    the commands were never re-executed and the effects silently lost.
    The checkpoint must seal touched variables first."""
    sim = Simulator()
    rng = RngRegistry(0)
    net = Network(sim, rng=rng)
    config = RecoveryConfig(
        logging_mode="command", session_ckpt_threshold_bytes=64
    )
    msp = MiddlewareServer(
        sim, net, "server", ServiceDomainConfig(), config=config, rng=rng
    )

    def bump(ctx, argument):
        yield from ctx.update_shared(
            "total",
            lambda raw: (int.from_bytes(raw, "big") + 1).to_bytes(8, "big"),
        )
        return b"ok"

    msp.register_service("bump", bump)
    msp.register_shared("total", (0).to_bytes(8, "big"))
    msp.start_process()
    client = EndClient(sim, net, "client")
    session = client.open_session("server")

    def driver():
        yield 1.0
        for _ in range(6):
            yield from session.call("bump", b"")

    p = sim.spawn(driver())
    sim.run_until_process(p, limit=600_000)
    # The tiny threshold made the truncation actually happen pre-crash.
    assert msp.stats.session_checkpoints > 0
    msp.crash()
    msp.restart_process()

    def after():
        yield 1.0
        yield from session.call("bump", b"")

    p2 = sim.spawn(after())
    sim.run_until_process(p2, limit=600_000)
    p2.result
    assert int.from_bytes(msp.shared["total"].value, "big") == 7


# -- the regime barrier ------------------------------------------------------


def test_value_write_seals_uncaptured_commands_first():
    sim, msp = build_msp(logging_mode="adaptive")
    sv = msp.shared["v"]
    sv.apply_command_write(5, 0, b"cmd-effect", DependencyVector(), "cmd-sess")
    assert sv.uncaptured_commands

    session = msp.session_for("writer")
    assert session.logging_mode == "value"  # adaptive sessions start value
    ctx = NormalContext(msp, session)

    def run():
        yield from ctx.write_shared("v", b"after")

    p = sim.spawn(run())
    sim.run_until_process(p, limit=60_000)
    p.result

    assert sv.value == b"after"
    assert not sv.uncaptured_commands
    # The barrier forced an SV checkpoint before the value write, so the
    # command effect is captured under it, frontier and all.
    assert sv.last_ckpt_lsn is not None
    assert sv._frontier_floor == {"cmd-sess": (5, 0)}
