"""Fleet fault families: partitions, correlated crashes, disasters.

Every family must settle to clean verdicts (the resend protocol rides
out blackouts, recovery rides out crashes) and stay byte-identical at
any ``--jobs`` value — faults are part of the spec, not of the
execution schedule.
"""

import pytest

from repro.fleet import FleetSpec, FleetTopology
from repro.fleet.runner import fleet_fingerprint, run_fleet


def base_spec(**overrides):
    defaults = dict(
        msps=4,
        domains=2,
        shards=2,
        seed=5,
        sessions=30,
        duration_ms=2500.0,
        chain_depth=1,
        cross_domain_fraction=0.5,
    )
    defaults.update(overrides)
    return FleetSpec(**defaults)


SPLIT = (
    ("m000", "m002", "c.m000", "c.m002"),
    ("m001", "m003", "c.m001", "c.m003"),
)


def test_partition_window_settles_clean_and_jobs_invariant():
    spec = base_spec(
        partition_plan=((900.0, 1500.0, SPLIT[0], SPLIT[1]),),
    )
    result = run_fleet(spec, jobs=1)
    assert result["verdicts"]["clean"], result["violations"]
    assert result["ledger"]["dropped_partition"] > 0
    again = run_fleet(spec, jobs=2)
    assert fleet_fingerprint(again) == fleet_fingerprint(result)


def test_correlated_crash_records_one_event_per_victim():
    spec = base_spec(crash_plan=((1200.0, "m000"), (1200.0, "m002")))
    result = run_fleet(spec, jobs=1)
    assert result["verdicts"]["clean"], result["violations"]
    events = result["recovery"]
    assert [(e["msp"], e["kind"], e["at_ms"]) for e in events] == [
        ("m000", "restart", 1200.0),
        ("m002", "restart", 1200.0),
    ]
    assert all(e["duration_ms"] > 0 for e in events)


def test_disaster_fails_over_and_beats_cold_restart():
    """Whole-domain loss with warm standby: verified failover, clean
    settle, and a fault-to-open time below the same-instant cold
    restart (the standby skips restart_delay_ms)."""
    warm = base_spec(
        seed=9,
        warm_standby=True,
        disaster_plan=((1100.0, 1),),
        standby_takeover_ms=5.0,
    )
    cold = base_spec(seed=9, crash_plan=((1100.0, "m001"), (1100.0, "m003")))

    warm_result = run_fleet(warm, jobs=1)
    assert warm_result["verdicts"]["clean"], warm_result["violations"]
    warm_events = {e["msp"]: e for e in warm_result["recovery"]}
    assert set(warm_events) == {"m001", "m003"}
    assert all(e["kind"] == "failover" for e in warm_events.values())

    cold_result = run_fleet(cold, jobs=1)
    assert cold_result["verdicts"]["clean"], cold_result["violations"]
    cold_events = {e["msp"]: e for e in cold_result["recovery"]}
    for msp, warm_event in warm_events.items():
        assert warm_event["duration_ms"] < cold_events[msp]["duration_ms"], (
            msp,
            warm_event,
            cold_events[msp],
        )

    # Promoted standbys are reported; untouched ones audited clean.
    standby = {
        name: stats
        for shard in warm_result["shards"]
        for name, stats in shard["standby"].items()
    }
    assert standby["m001"]["promoted"] and standby["m003"]["promoted"]
    assert not standby["m000"]["promoted"]
    assert standby["m000"]["verifications"] >= 1  # end-of-run audit ran


def test_disaster_and_standby_runs_are_jobs_invariant():
    spec = base_spec(
        seed=13,
        warm_standby=True,
        disaster_plan=((1000.0, 0),),
        partition_plan=((1800.0, 2100.0, SPLIT[0], SPLIT[1]),),
    )
    first = run_fleet(spec, jobs=1)
    second = run_fleet(spec, jobs=2)
    assert first["verdicts"]["clean"], first["violations"]
    assert fleet_fingerprint(first) == fleet_fingerprint(second)


def test_spec_validation_of_fault_plans():
    with pytest.raises(ValueError, match="warm_standby"):
        FleetTopology(base_spec(disaster_plan=((100.0, 0),)))
    with pytest.raises(ValueError, match="unknown domain"):
        FleetTopology(
            base_spec(warm_standby=True, disaster_plan=((100.0, 7),))
        )
    with pytest.raises(ValueError, match="unknown nodes"):
        FleetTopology(
            base_spec(partition_plan=((0.0, 10.0, ("m000",), ("nope",)),))
        )
    with pytest.raises(ValueError, match="empty partition window"):
        FleetTopology(
            base_spec(partition_plan=((10.0, 10.0, ("m000",), ("m001",)),))
        )
