"""Fleet runner: jobs-invariance, canonical bytes, guard rails.

The central contract (DESIGN.md §17): the shard count is part of the
spec, ``--jobs`` is pure execution parallelism, and a fleet run is
byte-identical at any jobs value — including runs with mid-flight
crashes whose recovery traffic crosses the epoch barriers.
"""

import pytest

from repro.fleet import (
    FleetSpec,
    canonical_result_bytes,
    fleet_fingerprint,
    run_fleet,
)

#: Small but non-trivial: two domains on two shards, cross-domain chains
#: (the pessimistic flush path) and one mid-run crash + restart.
SPEC = FleetSpec(
    msps=4,
    domains=2,
    shards=2,
    seed=3,
    sessions=24,
    duration_ms=600.0,
    chain_depth=1,
    cross_domain_fraction=0.5,
    think_ms=2.0,
    epoch_ms=5.0,
    cross_latency_ms=5.0,
    crash_plan=((150.0, "m001"),),
)


def test_small_fleet_runs_clean():
    result = run_fleet(SPEC, jobs=1)
    assert result["verdicts"]["clean"], result["violations"]
    assert result["totals"]["completed_sessions"] == SPEC.sessions
    assert result["totals"]["cross_domain_calls"] > 0
    assert result["cross_shard_messages"] > 0
    assert result["domains"] == [["m000", "m002"], ["m001", "m003"]]


def test_jobs_invariance_byte_identical():
    """jobs=1 (in-process reference) and jobs=2 (spawn workers) must
    produce byte-identical canonical results — the merge order, not the
    execution interleaving, defines the run."""
    serial = run_fleet(SPEC, jobs=1)
    pooled = run_fleet(SPEC, jobs=2)
    assert canonical_result_bytes(serial) == canonical_result_bytes(pooled)
    assert fleet_fingerprint(serial) == fleet_fingerprint(pooled)
    assert serial["verdicts"]["clean"]


def test_canonical_bytes_exclude_wall_clock():
    result = run_fleet(SPEC, jobs=1)
    before = canonical_result_bytes(result)
    result["timing"] = {"wall_s": 123456.0, "jobs": 99, "workers": {}}
    assert canonical_result_bytes(result) == before


def test_jobs_capped_at_shard_count():
    spec = FleetSpec(
        msps=2, domains=2, shards=2, sessions=6, duration_ms=200.0,
        chain_depth=0, epoch_ms=5.0, cross_latency_ms=5.0,
    )
    result = run_fleet(spec, jobs=16)
    assert result["timing"]["jobs"] == 2
    assert result["verdicts"]["clean"], result["violations"]


def test_tracer_requires_sequential_execution():
    with pytest.raises(ValueError, match="jobs 1"):
        run_fleet(SPEC, jobs=2, tracer_factory=lambda shard: None)


def test_domains_isolated_under_full_cross_traffic():
    """DV-never-crosses regression at fleet level: with every hop forced
    across a domain boundary, the invariant scan must find no DV that
    leaked past a boundary (verdict ``domains_isolated``)."""
    spec = FleetSpec(
        msps=4,
        domains=2,
        shards=2,
        seed=9,
        sessions=16,
        duration_ms=400.0,
        chain_depth=2,
        cross_domain_fraction=1.0,
        think_ms=2.0,
        epoch_ms=5.0,
        cross_latency_ms=5.0,
    )
    result = run_fleet(spec, jobs=1)
    assert result["verdicts"]["domains_isolated"]
    assert result["verdicts"]["clean"], result["violations"]
