"""FleetSpec / FleetTopology validation and placement (DESIGN.md §17)."""

import json

import pytest

from repro.fleet import FleetSpec, FleetTopology


# -- validation --------------------------------------------------------------


def test_needs_at_least_one_msp():
    with pytest.raises(ValueError, match="at least one MSP"):
        FleetTopology(FleetSpec(msps=0))


def test_domains_bounded_by_msps():
    with pytest.raises(ValueError, match="domains must be in"):
        FleetTopology(FleetSpec(msps=2, domains=3))
    with pytest.raises(ValueError, match="domains must be in"):
        FleetTopology(FleetSpec(msps=2, domains=0))


def test_shards_bounded_by_domains():
    """Whole domains live on one shard, so shards can never exceed
    domains — otherwise a DV-carrying intra-domain message would have
    to cross a shard boundary."""
    with pytest.raises(ValueError, match="shards must be in"):
        FleetTopology(FleetSpec(msps=8, domains=2, shards=3))
    with pytest.raises(ValueError, match="shards must be in"):
        FleetTopology(FleetSpec(msps=8, domains=2, shards=0))


def test_epoch_must_be_positive():
    with pytest.raises(ValueError, match="epoch_ms must be positive"):
        FleetTopology(FleetSpec(epoch_ms=0.0))


def test_epoch_bounded_by_cross_latency_when_sharded():
    """A cross-shard message must never arrive inside the epoch that
    sent it — the correctness condition of the barrier protocol."""
    with pytest.raises(ValueError, match="cross_latency_ms"):
        FleetTopology(
            FleetSpec(msps=4, domains=2, shards=2, epoch_ms=10.0, cross_latency_ms=5.0)
        )
    # Unsharded runs have no cross-shard messages; any epoch is fine.
    FleetTopology(
        FleetSpec(msps=4, domains=2, shards=1, epoch_ms=10.0, cross_latency_ms=5.0)
    )


def test_domain_layout_rejects_unknown_msps():
    with pytest.raises(ValueError, match="unknown MSPs: m9"):
        FleetTopology(
            FleetSpec(msps=2, domains=2, domain_layout=(("m000",), ("m001", "m9")))
        )


def test_domain_layout_rejects_unrouted_msps():
    with pytest.raises(ValueError, match="unrouted: m001"):
        FleetTopology(
            FleetSpec(msps=3, domains=2, domain_layout=(("m000",), ("m002",)))
        )


def test_domain_layout_count_must_match_spec():
    with pytest.raises(ValueError, match="spec says 3"):
        FleetTopology(
            FleetSpec(
                msps=4,
                domains=3,
                domain_layout=(("m000", "m001"), ("m002", "m003")),
            )
        )


def test_domain_layout_rejects_overlap():
    # The overlap is caught by ServiceDomainConfig itself.
    with pytest.raises(ValueError):
        FleetTopology(
            FleetSpec(
                msps=2, domains=2, domain_layout=(("m000", "m001"), ("m001",))
            )
        )


def test_crash_plan_rejects_unknown_msp_and_negative_time():
    with pytest.raises(ValueError, match="unknown MSP"):
        FleetTopology(FleetSpec(msps=2, crash_plan=((10.0, "nope"),)))
    with pytest.raises(ValueError, match="in the past"):
        FleetTopology(FleetSpec(msps=2, crash_plan=((-1.0, "m000"),)))


# -- placement ---------------------------------------------------------------


def test_round_robin_domain_assignment():
    top = FleetTopology(FleetSpec(msps=6, domains=2))
    assert top.domain_lists == [
        ("m000", "m002", "m004"),
        ("m001", "m003", "m005"),
    ]
    assert top.domain_index("m003") == 1


def test_whole_domains_per_shard():
    top = FleetTopology(FleetSpec(msps=8, domains=4, shards=2))
    for msp in top.msp_names:
        # Every MSP shares its shard with its whole domain.
        d = top.domain_index(msp)
        assert top.shard_of(msp) == top.shard_of_domain(d)
        for peer in top.peers_inside_domain(msp):
            assert top.shard_of(peer) == top.shard_of(msp)
    # local_msps partitions the fleet, in canonical name order.
    hosted = [m for s in range(2) for m in top.local_msps(s)]
    assert sorted(hosted) == top.msp_names
    for s in range(2):
        assert top.local_msps(s) == sorted(top.local_msps(s))


def test_peers_inside_and_outside_partition_the_fleet():
    top = FleetTopology(FleetSpec(msps=6, domains=3))
    for msp in top.msp_names:
        inside = top.peers_inside_domain(msp)
        outside = top.peers_outside_domain(msp)
        assert msp not in inside and msp not in outside
        assert sorted(inside + outside + [msp]) == top.msp_names


def test_hot_cold_arrival_weights():
    spec = FleetSpec(msps=8, domains=2, hot_fraction=0.25, hot_weight=4.0)
    top = FleetTopology(spec)
    assert top.arrival_weights == [4.0, 4.0] + [1.0] * 6


def test_spec_canonical_is_json_safe():
    spec = FleetSpec(
        msps=4,
        domains=2,
        crash_plan=((100.0, "m001"),),
        domain_layout=(("m000", "m001"), ("m002", "m003")),
    )
    data = json.loads(json.dumps(spec.canonical()))
    assert data["msps"] == 4
    assert data["crash_plan"] == [[100.0, "m001"]]
    assert data["domain_layout"] == [["m000", "m001"], ["m002", "m003"]]
