"""Bounded fuzz battery over the multi-domain fleet topology.

A CI-sized slice of the fleet crash enumeration: discover the crash
sites a small two-domain fleet reaches, fail-stop MSPs at a spread of
them, and require the full fleet invariant battery (exactly-once across
domain-crossing chains, DV isolation, ledger balance) to hold on every
schedule.
"""

from repro.fuzz import enumerate_schedules, fleet_fuzz_params, run_schedule


def small_params():
    return fleet_fuzz_params(
        fleet_msps=4,
        fleet_domains=2,
        fleet_sessions=8,
        fleet_duration_ms=300.0,
        fleet_chain_depth=2,
        fleet_cross_domain_fraction=0.75,
    )


def test_fleet_discovery_reaches_all_msps():
    params = small_params()
    _schedules, counts = enumerate_schedules(params, seed=0, max_schedules=1)
    assert set(counts) == {"m000", "m001", "m002", "m003"}
    # Chained cross-domain traffic must reach probe sites everywhere.
    assert all(count > 0 for count in counts.values()), counts


def test_fleet_crash_schedules_hold_invariants():
    params = small_params()
    schedules, _counts = enumerate_schedules(params, seed=0, max_schedules=8)
    assert len(schedules) == 8
    injected = 0
    for schedule in schedules:
        result = run_schedule(schedule, params)
        assert not result.violations, (
            schedule.to_dict(),
            result.violations,
        )
        injected += result.crashes_injected
    assert injected > 0


def test_fleet_no_crash_baseline_is_clean():
    from repro.fuzz import CrashSchedule

    params = small_params()
    result = run_schedule(
        CrashSchedule(target="m000", kills=(), seed=1), params
    )
    assert not result.violations, result.violations
    assert result.crashes_injected == 0
    assert result.completed_requests > 0
