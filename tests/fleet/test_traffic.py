"""Open-loop traffic generator: determinism and plan shape."""

import random

from repro.fleet import FleetSpec, FleetTopology
from repro.fleet.traffic import decode_hops, encode_hops, generate_session_plans


def plans_for(spec, seed=7):
    return list(generate_session_plans(FleetTopology(spec), random.Random(seed)))


def test_plans_are_deterministic():
    spec = FleetSpec(msps=6, domains=3, sessions=50, seed=5)
    assert plans_for(spec) == plans_for(spec)


def test_plan_shape_respects_spec():
    spec = FleetSpec(
        msps=6,
        domains=3,
        sessions=80,
        duration_ms=2_000.0,
        chain_depth=2,
        max_requests_per_session=4,
    )
    top = FleetTopology(spec)
    plans = plans_for(spec)
    assert len(plans) == 80
    assert [p.index for p in plans] == list(range(80))
    assert len({p.session_id for p in plans}) == 80
    for plan in plans:
        assert plan.home in top.msp_names
        assert 0.0 <= plan.arrival_ms < spec.duration_ms
        assert 1 <= len(plan.calls) <= spec.max_requests_per_session
        for hops in plan.calls:
            assert len(hops) <= spec.chain_depth
            for hop in hops:
                assert hop in top.msp_names


def test_cross_domain_fraction_extremes():
    base = dict(msps=6, domains=3, sessions=60, chain_depth=1)
    top = FleetTopology(FleetSpec(**base))

    all_inside = plans_for(FleetSpec(cross_domain_fraction=0.0, **base))
    for plan in all_inside:
        for hops in plan.calls:
            for hop in hops:
                assert top.domain_index(hop) == top.domain_index(plan.home)

    all_cross = plans_for(FleetSpec(cross_domain_fraction=1.0, **base))
    crossed = 0
    for plan in all_cross:
        for hops in plan.calls:
            for hop in hops:
                assert top.domain_index(hop) != top.domain_index(plan.home)
                crossed += 1
    assert crossed > 0


def test_hot_msps_receive_more_sessions():
    spec = FleetSpec(
        msps=8, domains=2, sessions=800, hot_fraction=0.25, hot_weight=4.0
    )
    counts = {name: 0 for name in FleetTopology(spec).msp_names}
    for plan in plans_for(spec):
        counts[plan.home] += 1
    hot = counts["m000"] + counts["m001"]
    cold = sum(counts.values()) - hot
    # Hot MSPs carry 4x the per-MSP mass: 2 hot vs 6 cold => 8:6 overall.
    assert hot > cold


def test_hop_encoding_roundtrip():
    assert decode_hops(encode_hops(())) == ()
    assert decode_hops(encode_hops(("m001",))) == ("m001",)
    assert decode_hops(encode_hops(("m001", "m004"))) == ("m001", "m004")
