"""Cross-check the analytic §5.2 model against the paper and the simulator."""

import pytest

from repro.workloads import PaperWorkload, WorkloadParams
from repro.workloads.calibration import AnalyticModel


@pytest.fixture(scope="module")
def model():
    return AnalyticModel()


def test_tf2_matches_paper_estimate(model):
    """Paper §5.2: 'we crudely estimate TF2 to be 8 ms'."""
    assert model.tf(2) == pytest.approx(8.0, abs=0.5)


def test_message_round_matches_paper(model):
    """Paper: measured 3.596 ms between the MSPs."""
    assert model.message_round_ms() == pytest.approx(3.596, abs=0.5)


def test_client_round_matches_paper(model):
    """Paper: measured 3.9 ms between client and MSP1."""
    assert model.client_round_ms() == pytest.approx(3.9, abs=0.5)


def test_delta_response_near_paper(model):
    """Paper: Δresponse computed as 12.404 − TDV, measured 10.481 ms."""
    delta = model.delta_response_ms()
    assert 9.0 < delta < 14.0


def test_delta_grows_linearly_with_m(model):
    d1 = model.delta_response_vs_m(1)
    d4 = model.delta_response_vs_m(4)
    assert d4 - d1 == pytest.approx(6 * model.tf(2))


def test_recovery_read_rate_matches_paper(model):
    """Paper §5.4: reading 1 MB of log takes ~370 ms."""
    assert model.recovery_read_ms_per_mb() == pytest.approx(370, abs=10)


def test_analytic_delta_close_to_simulated():
    """The closed-form Δresponse matches the simulated difference."""
    def mean(configuration):
        workload = PaperWorkload(
            WorkloadParams(configuration=configuration, requests_per_client=150)
        )
        return workload.run().mean_response_ms

    simulated_delta = mean("Pessimistic") - mean("LoOptimistic")
    analytic_delta = AnalyticModel().delta_response_ms()
    # The analytic form ignores queueing and the extra flush-ack round,
    # so allow a generous band; the paper's own prediction was off by
    # ~2 ms from its measurement too.
    assert simulated_delta == pytest.approx(analytic_delta, abs=4.0)


def test_flush_span_ordering(model):
    """Pessimistic's three sequential flushes dominate the single
    distributed flush — the heart of the paper's claim."""
    assert model.pessimistic_flush_span_ms() > model.looptimistic_flush_span_ms()
