"""Tests for the paper's experimental workload builder."""

import pytest

from repro.workloads import CONFIGURATIONS, PaperWorkload, WorkloadParams


def test_unknown_configuration_rejected():
    with pytest.raises(ValueError):
        WorkloadParams(configuration="Nonsense")


def test_all_configurations_run():
    for configuration in CONFIGURATIONS:
        workload = PaperWorkload(
            WorkloadParams(configuration=configuration, requests_per_client=5)
        )
        result = workload.run()
        assert result.completed_requests == 5
        assert result.mean_response_ms > 0


def test_exactly_once_verification_single_client():
    workload = PaperWorkload(
        WorkloadParams(configuration="LoOptimistic", requests_per_client=20)
    )
    workload.run()
    workload.verify_exactly_once()
    assert workload.shared_counters() == {"SV0": 20, "SV1": 20, "SV2": 20, "SV3": 20}


def test_calls_to_sm2_multiplies_sv23():
    workload = PaperWorkload(
        WorkloadParams(
            configuration="LoOptimistic", requests_per_client=10, calls_to_sm2=3
        )
    )
    workload.run()
    counters = workload.shared_counters()
    assert counters["SV0"] == 10
    assert counters["SV2"] == 30
    assert counters["SV3"] == 30


def test_deterministic_given_seed():
    def run():
        workload = PaperWorkload(
            WorkloadParams(configuration="Pessimistic", requests_per_client=25, seed=7)
        )
        result = workload.run()
        return (result.mean_response_ms, result.max_response_ms, result.msp1_flushes)

    assert run() == run()


def test_different_seeds_differ():
    def run(seed):
        workload = PaperWorkload(
            WorkloadParams(configuration="Pessimistic", requests_per_client=25, seed=seed)
        )
        return workload.run().mean_response_ms

    assert run(1) != run(2)


def test_crash_rate_injects_crashes():
    workload = PaperWorkload(
        WorkloadParams(
            configuration="LoOptimistic", requests_per_client=60, crash_every_n=20
        )
    )
    result = workload.run()
    workload.verify_exactly_once()
    assert result.crashes == 3
    assert result.replayed_requests > 0


def test_crashes_hurt_throughput():
    calm = PaperWorkload(
        WorkloadParams(configuration="LoOptimistic", requests_per_client=120)
    ).run()
    crashy = PaperWorkload(
        WorkloadParams(
            configuration="LoOptimistic", requests_per_client=120, crash_every_n=30
        )
    ).run()
    assert crashy.throughput_rps < calm.throughput_rps


def test_multiclient_increases_throughput():
    one = PaperWorkload(
        WorkloadParams(configuration="LoOptimistic", requests_per_client=40)
    ).run()
    four = PaperWorkload(
        WorkloadParams(
            configuration="LoOptimistic", requests_per_client=40, num_clients=4
        )
    ).run()
    assert four.completed_requests == 160
    assert four.throughput_rps > 2 * one.throughput_rps


def test_batch_flushing_recorded_in_fewer_flushes():
    plain = PaperWorkload(
        WorkloadParams(
            configuration="Pessimistic", requests_per_client=30, num_clients=4
        )
    ).run()
    batched = PaperWorkload(
        WorkloadParams(
            configuration="Pessimistic",
            requests_per_client=30,
            num_clients=4,
            batch_flush_timeout_ms=8.0,
        )
    ).run()
    assert batched.msp1_flushes < plain.msp1_flushes


def test_result_properties():
    workload = PaperWorkload(
        WorkloadParams(configuration="NoLog", requests_per_client=10)
    )
    result = workload.run()
    assert result.throughput_rps == pytest.approx(
        result.completed_requests / result.elapsed_ms * 1000.0
    )
    assert result.max_response_ms >= result.mean_response_ms
