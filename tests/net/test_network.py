"""Tests for the simulated network."""

import pytest

from repro.net import FaultModel, Network
from repro.sim import RngRegistry, Simulator


def make_net(seed=0):
    sim = Simulator()
    net = Network(sim, rng=RngRegistry(seed))
    return sim, net


def test_delivery_latency_and_bandwidth():
    sim, net = make_net()
    net.node("a")
    b = net.node("b")
    inbox = b.bind("in")
    net.set_link("a", "b", latency_ms=1.0, bandwidth_bytes_per_ms=1000.0)

    def receiver():
        env = yield from inbox.get()
        return env.payload, sim.now

    p = sim.spawn(receiver())
    net.send("a", "b", "in", "hi", size_bytes=500)
    sim.run()
    # 1.0 ms latency + 500/1000 ms transfer.
    assert p.result == ("hi", pytest.approx(1.5))


def test_send_to_unbound_port_drops():
    sim, net = make_net()
    net.node("a")
    net.node("b")
    net.send("a", "b", "nowhere", "lost", size_bytes=10)
    sim.run()
    assert net.messages_dropped == 1
    assert net.messages_delivered == 0


def test_send_to_unknown_node_drops():
    sim, net = make_net()
    net.node("a")
    net.send("a", "ghost", "in", "lost", size_bytes=10)
    sim.run()
    assert net.messages_dropped == 1


def test_unbind_all_models_crash():
    sim, net = make_net()
    net.node("a")
    b = net.node("b")
    b.bind("in")
    b.unbind_all()
    net.send("a", "b", "in", "lost", size_bytes=10)
    sim.run()
    assert net.messages_dropped == 1


def test_fault_loss_drops_messages():
    sim, net = make_net(seed=3)
    net.node("a")
    b = net.node("b")
    inbox = b.bind("in")
    net.set_link("a", "b", faults=FaultModel(loss_prob=0.5))
    for i in range(200):
        net.send("a", "b", "in", i, size_bytes=10)
    sim.run()
    delivered = len(inbox)
    assert 60 < delivered < 140
    assert net.messages_dropped == 200 - delivered


def test_fault_duplication():
    sim, net = make_net(seed=4)
    net.node("a")
    b = net.node("b")
    inbox = b.bind("in")
    net.set_link("a", "b", faults=FaultModel(duplicate_prob=1.0))
    net.send("a", "b", "in", "x", size_bytes=10)
    sim.run()
    assert len(inbox) == 2


def test_fault_reorder_can_invert_arrival():
    sim, net = make_net(seed=5)
    net.node("a")
    b = net.node("b")
    inbox = b.bind("in")
    net.set_link(
        "a", "b", faults=FaultModel(reorder_prob=0.5, reorder_max_delay_ms=20.0)
    )
    for i in range(50):
        net.send("a", "b", "in", i, size_bytes=10)
    sim.run()
    arrived = [env.payload for env in inbox.drain()]
    assert sorted(arrived) == list(range(50))
    assert arrived != list(range(50))


def test_deterministic_across_runs():
    def run_once():
        sim, net = make_net(seed=9)
        net.node("a")
        b = net.node("b")
        inbox = b.bind("in")
        net.set_link("a", "b", faults=FaultModel(loss_prob=0.3, reorder_prob=0.3))
        for i in range(100):
            net.send("a", "b", "in", i, size_bytes=10)
        sim.run()
        return [env.payload for env in inbox.drain()]

    assert run_once() == run_once()


def test_round_trip_estimate():
    sim, net = make_net()
    net.set_link("a", "b", latency_ms=1.0, bandwidth_bytes_per_ms=1000.0)
    assert net.round_trip_ms("a", "b", size_bytes=100) == pytest.approx(2.2)


def test_intra_domain_round_trip_close_to_paper():
    """With defaults + ~1.4 ms CPU/stack cost the paper's 3.596 ms holds."""
    sim, net = make_net()
    rtt = net.round_trip_ms("msp1", "msp2", size_bytes=300)
    assert 0.5 < rtt < 3.6
