"""Property tests for the network's honest counter ledger.

Before the fix the fabric counted a *sent* for copies it silently
discarded and never counted duplicates at all, so
``sent != delivered + dropped`` under faults and nothing could audit a
lost message.  The invariant now holds at every instant:
``sent + duplicated == delivered + dropped + in_flight``.
"""

from hypothesis import given, settings, strategies as st

from repro.net import FaultModel, Network
from repro.sim import RngRegistry, Simulator


def _chaos_run(seed, loss, dup, reorder, sends, crash_at):
    """One randomized run; returns the network mid-run and quiesced."""
    sim = Simulator()
    net = Network(sim, rng=RngRegistry(seed))
    net.node("a")
    b = net.node("b")
    b.bind("in")
    net.set_link(
        "a", "b",
        faults=FaultModel(loss_prob=loss, duplicate_prob=dup, reorder_prob=reorder),
    )
    for i in range(sends):
        # A mix of bound, unbound and unknown-node targets.
        if i % 7 == 3:
            net.send("a", "b", "nowhere", i, size_bytes=10)
        elif i % 11 == 5:
            net.send("a", "ghost", "in", i, size_bytes=10)
        else:
            net.send("a", "b", "in", i, size_bytes=10)
        if i == crash_at:
            b.unbind_all()  # crash mid-stream: in-flight copies go stale
            b.bind("in")  # restart re-binds the same port name
    return net


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    loss=st.floats(min_value=0.0, max_value=0.6),
    dup=st.floats(min_value=0.0, max_value=0.6),
    reorder=st.floats(min_value=0.0, max_value=0.5),
    sends=st.integers(min_value=1, max_value=80),
)
def test_ledger_balances_under_faults_and_crashes(seed, loss, dup, reorder, sends):
    net = _chaos_run(seed, loss, dup, reorder, sends, crash_at=sends // 2)
    # Mid-run: copies may still be in flight, the ledger must balance.
    net.check_ledger()
    assert net.messages_sent == sends
    net.sim.run()
    # Quiesced: nothing left in flight, every copy accounted for.
    net.check_ledger()
    ledger = net.ledger()
    assert ledger["messages_in_flight"] == 0
    assert (
        ledger["messages_sent"] + ledger["messages_duplicated"]
        == ledger["messages_delivered"] + ledger["messages_dropped"]
    )
    assert ledger["messages_dropped"] == (
        ledger["dropped_fault"] + ledger["dropped_unbound"] + ledger["dropped_stale"]
    )


def test_duplication_can_deliver_more_than_sent():
    sim = Simulator()
    net = Network(sim, rng=RngRegistry(4))
    net.node("a")
    b = net.node("b")
    inbox = b.bind("in")
    net.set_link("a", "b", faults=FaultModel(duplicate_prob=1.0))
    for i in range(20):
        net.send("a", "b", "in", i, size_bytes=10)
    sim.run()
    net.check_ledger()
    assert net.messages_delivered == len(inbox) == 40
    assert net.messages_sent == 20
    assert net.messages_duplicated == 20


def test_fault_drop_is_counted_by_reason():
    sim = Simulator()
    net = Network(sim, rng=RngRegistry(0))
    net.node("a")
    b = net.node("b")
    b.bind("in")
    net.set_link("a", "b", faults=FaultModel(loss_prob=1.0))
    net.send("a", "b", "in", "x", size_bytes=10)
    sim.run()
    net.check_ledger()
    assert net.ledger()["dropped_fault"] == 1
    assert net.messages_delivered == 0


def test_in_flight_visible_before_delivery():
    sim = Simulator()
    net = Network(sim, rng=RngRegistry(0))
    net.node("a")
    b = net.node("b")
    b.bind("in")
    net.send("a", "b", "in", "x", size_bytes=10)
    assert net.messages_in_flight == 1
    net.check_ledger()
    sim.run()
    assert net.messages_in_flight == 0
    assert net.messages_delivered == 1


def test_check_ledger_raises_on_imbalance():
    import pytest

    sim = Simulator()
    net = Network(sim, rng=RngRegistry(0))
    net.messages_sent = 5  # cooked books
    with pytest.raises(AssertionError):
        net.check_ledger()
