"""Regression tests: no cross-incarnation message delivery.

Before the fix an envelope sent toward a process that crashed while the
message was in flight would happily land in the *restarted* process's
inbox whenever the restart re-bound the same port name — a message from
a past life delivered to the new incarnation.  ``unbind_all`` now bumps
the node's incarnation and delivery drops envelopes stamped with an
older one.
"""

from repro.sim import RngRegistry, Simulator
from repro.net import Network


def make_net(seed=0):
    sim = Simulator()
    net = Network(sim, rng=RngRegistry(seed))
    return sim, net


def test_crash_and_rebind_drops_in_flight_messages():
    sim, net = make_net()
    net.node("a")
    b = net.node("b")
    b.bind("in")
    net.set_link("a", "b", latency_ms=5.0)
    net.send("a", "b", "in", "from-the-past", size_bytes=10)
    # Crash and restart while the message is still in flight; the
    # restarted process re-binds the *same* port name.
    b.unbind_all()
    inbox = b.bind("in")
    sim.run()
    assert len(inbox) == 0  # the pre-crash envelope must not land here
    assert net.ledger()["dropped_stale"] == 1
    net.check_ledger()


def test_messages_sent_after_restart_deliver_normally():
    sim, net = make_net()
    net.node("a")
    b = net.node("b")
    b.bind("in")
    b.unbind_all()
    inbox = b.bind("in")
    net.send("a", "b", "in", "fresh", size_bytes=10)
    sim.run()
    assert [env.payload for env in inbox.drain()] == ["fresh"]
    assert net.ledger()["dropped_stale"] == 0


def test_no_crash_control_delivers():
    sim, net = make_net()
    net.node("a")
    b = net.node("b")
    inbox = b.bind("in")
    net.set_link("a", "b", latency_ms=5.0)
    net.send("a", "b", "in", "x", size_bytes=10)
    sim.run()
    assert len(inbox) == 1
    assert net.ledger()["dropped_stale"] == 0


def test_each_crash_bumps_incarnation():
    _sim, net = make_net()
    b = net.node("b")
    assert b.incarnation == 0
    b.unbind_all()
    b.unbind_all()
    assert b.incarnation == 2


def test_msp_crash_restart_does_not_leak_old_messages():
    """End-to-end: a request racing an MSP crash/restart is dropped, and
    the client's resend discipline (not a stale delivery) recovers it."""
    from tests.core.test_flush_protocol import build_pair

    sim, msp1, msp2 = build_pair()
    # Put a message on the wire toward msp2's flush port, then crash and
    # restart msp2 before it arrives (default link latency > 0).
    msp1.node.send("msp2", "flush", "zombie-payload", 100)
    msp2.crash()
    msp2.restart_process()
    sim.run(until=sim.now + 1000.0)
    assert msp2.running
    assert msp1.network.ledger()["dropped_stale"] >= 1
    msp1.network.check_ledger()
