"""Tests for the fault model."""

import random

from repro.net import FaultModel
from repro.net.faults import RELIABLE


def test_reliable_model():
    assert RELIABLE.is_reliable()
    rng = random.Random(0)
    assert not RELIABLE.should_drop(rng)
    assert not RELIABLE.should_duplicate(rng)
    assert RELIABLE.extra_delay(rng) == 0.0


def test_loss_probability_respected():
    model = FaultModel(loss_prob=0.5)
    rng = random.Random(1)
    drops = sum(model.should_drop(rng) for _ in range(2000))
    assert 850 < drops < 1150


def test_duplicate_probability_respected():
    model = FaultModel(duplicate_prob=0.25)
    rng = random.Random(2)
    dups = sum(model.should_duplicate(rng) for _ in range(2000))
    assert 400 < dups < 600


def test_reorder_delay_bounded():
    model = FaultModel(reorder_prob=1.0, reorder_max_delay_ms=7.0)
    rng = random.Random(3)
    delays = [model.extra_delay(rng) for _ in range(500)]
    assert all(0.0 <= d <= 7.0 for d in delays)
    assert any(d > 0.0 for d in delays)


def test_not_reliable_when_any_fault_set():
    assert not FaultModel(loss_prob=0.1).is_reliable()
    assert not FaultModel(duplicate_prob=0.1).is_reliable()
    assert not FaultModel(reorder_prob=0.1).is_reliable()
