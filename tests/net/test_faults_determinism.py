"""Replay determinism of the fault model (the delivery-plan contract).

Every fault decision for one message must come from ``delivery_plan`` in
one fixed draw order, so that a seeded run and its replay consume the
RNG stream identically — the property the crash-schedule fuzzer's
``(seed, schedule)`` reproduction depends on.
"""

import random

from repro.fuzz import FaultSpec, FuzzParams, discover_sites
from repro.fuzz.explorer import build_world
from repro.fuzz.sites import TraceRecorder
from repro.net import FaultModel
from repro.net.faults import RELIABLE


def test_delivery_plan_is_deterministic_per_seed():
    model = FaultModel(
        loss_prob=0.1, duplicate_prob=0.1, reorder_prob=0.3, reorder_max_delay_ms=4.0
    )
    a = [model.delivery_plan(random.Random(7)) for _ in range(1)]
    b = [model.delivery_plan(random.Random(7)) for _ in range(1)]
    assert a == b
    rng_a, rng_b = random.Random(11), random.Random(11)
    plans_a = [model.delivery_plan(rng_a) for _ in range(500)]
    plans_b = [model.delivery_plan(rng_b) for _ in range(500)]
    assert plans_a == plans_b
    assert rng_a.getstate() == rng_b.getstate()


def test_reliable_model_consumes_no_draws():
    rng = random.Random(3)
    control = random.Random(3)
    assert RELIABLE.delivery_plan(rng) == (0.0,)
    assert rng.getstate() == control.getstate()


def test_dropped_message_consumes_exactly_one_draw():
    model = FaultModel(loss_prob=1.0, duplicate_prob=0.5, reorder_prob=0.5)
    rng = random.Random(5)
    control = random.Random(5)
    assert model.delivery_plan(rng) == ()
    control.random()  # the drop decision is the only draw
    assert rng.getstate() == control.getstate()


def test_duplicate_plan_has_two_copies():
    model = FaultModel(duplicate_prob=1.0)
    plan = FaultModel(duplicate_prob=1.0).delivery_plan(random.Random(0))
    assert len(plan) == 2
    assert plan == model.delivery_plan(random.Random(0))


def test_delay_draws_are_per_copy():
    model = FaultModel(duplicate_prob=1.0, reorder_prob=1.0, reorder_max_delay_ms=9.0)
    plan = model.delivery_plan(random.Random(1))
    assert len(plan) == 2
    assert all(0.0 <= d <= 9.0 for d in plan)
    assert plan[0] != plan[1]  # independent draws for independent copies


def test_same_seed_faulty_runs_have_identical_delivery_orders():
    """Two same-seed runs under loss, duplication and reordering must
    deliver every message at the same simulated instant — the end-to-end
    determinism the fuzzer's replay mode rests on."""
    params = FuzzParams(num_clients=2, requests_per_client=4)
    faults = FaultSpec(
        loss_prob=0.05, duplicate_prob=0.05, reorder_prob=0.25, reorder_max_delay_ms=5.0
    )

    def run():
        workload = build_world(params, seed=13, faults=faults)
        recorder = TraceRecorder(workload.sim).attach()
        result = workload.run(limit_ms=params.limit_ms)
        recorder.detach()
        deliveries = [
            (e.owner, e.time) for e in recorder.events if e.site == "net.deliver"
        ]
        return deliveries, result.completed_requests, result.response_times_ms

    first, second = run(), run()
    assert first[0], "no deliveries traced"
    assert first == second


def test_different_seeds_diverge_under_faults():
    params = FuzzParams(num_clients=1, requests_per_client=4)
    faults = FaultSpec(reorder_prob=0.5, reorder_max_delay_ms=5.0)

    def run(seed):
        workload = build_world(params, seed=seed, faults=faults)
        result = workload.run(limit_ms=params.limit_ms)
        return tuple(result.response_times_ms)

    assert run(1) != run(2)


def test_discovery_trace_stable_under_fault_free_rebuild():
    # The RngRegistry's named streams isolate fault draws per link, so a
    # fault-free world built twice is probe-for-probe identical.
    a = discover_sites(FuzzParams(), seed=21)
    b = discover_sites(FuzzParams(), seed=21)
    assert a.fingerprint() == b.fingerprint()
