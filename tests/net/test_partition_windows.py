"""Partition windows: determinism and blackout-delivery properties.

The contract (repro.net.faults.PartitionWindow): a window is RNG-free
and decided at send time, so (a) seeded replays of a partitioned run
are byte-identical, (b) adding a window never shifts the per-link fault
streams of the surrounding traffic, and (c) a healed partition delivers
*no* envelope whose send fell inside the blackout — the drop is final,
not a delay.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import FaultModel, Network, PartitionWindow
from repro.sim import RngRegistry, Simulator


def build_net(seed, faults=None, windows=()):
    sim = Simulator()
    net = Network(sim, rng=RngRegistry(seed))
    for name in ("a1", "a2", "b1", "b2"):
        net.node(name).bind("p")
    if faults is not None:
        for src in ("a1", "a2"):
            for dst in ("b1", "b2"):
                net.set_link(src, dst, faults=faults)
    for window in windows:
        net.add_partition(window)
    return sim, net


def drain(net, name):
    """Delivered payload/timestamp pairs for node ``name``."""
    inbox = net.node(name).inbox("p")
    return [(e.payload, e.sent_at, e.delivered_at) for e in inbox._items]


def run_schedule(seed, sends, windows=(), faults=None, until=500.0):
    """Send ``(time, src, dst, tag)`` entries; return delivery log + ledger."""
    sim, net = build_net(seed, faults=faults, windows=windows)
    for when, src, dst, tag in sends:
        sim.call_at(when, lambda s=src, d=dst, t=tag: net.send(s, d, "p", t, 100))
    sim.run(until=until)
    net.check_ledger()
    deliveries = {name: drain(net, name) for name in ("a1", "a2", "b1", "b2")}
    return deliveries, net.ledger()


window_strategy = st.builds(
    PartitionWindow,
    side_a=st.just(("a1", "a2")),
    side_b=st.just(("b1", "b2")),
    start_ms=st.floats(min_value=0.0, max_value=200.0),
    end_ms=st.floats(min_value=200.001, max_value=400.0),
)

send_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=400.0),
        st.sampled_from(["a1", "a2", "b1", "b2"]),
        st.sampled_from(["a1", "a2", "b1", "b2"]),
        st.integers(min_value=0, max_value=10**6),
    ).filter(lambda s: s[1] != s[2]),
    min_size=1,
    max_size=40,
)

faults_strategy = st.builds(
    FaultModel,
    loss_prob=st.floats(min_value=0.0, max_value=0.3),
    duplicate_prob=st.floats(min_value=0.0, max_value=0.3),
    reorder_prob=st.floats(min_value=0.0, max_value=0.5),
    reorder_max_delay_ms=st.just(5.0),
)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**16), sends=send_strategy,
       window=window_strategy, faults=faults_strategy)
def test_partitioned_delivery_plans_replay_byte_identical(
    seed, sends, window, faults
):
    first = run_schedule(seed, sends, windows=(window,), faults=faults)
    second = run_schedule(seed, sends, windows=(window,), faults=faults)
    assert first == second


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**16), sends=send_strategy,
       window=window_strategy, faults=faults_strategy)
def test_window_never_shifts_fault_draws_outside_the_blackout(
    seed, sends, window, faults
):
    """Removing the window must change nothing about envelopes whose
    send the window did not sever: same delivery instants, same fault
    drops — the RNG streams were consumed identically."""
    # Unique tags so a delivery identifies its send unambiguously.
    sends = [(when, src, dst, i) for i, (when, src, dst, _) in enumerate(sends)]
    with_window, ledger_with = run_schedule(
        seed, sends, windows=(window,), faults=faults
    )
    without, ledger_without = run_schedule(seed, sends, windows=(), faults=faults)
    severed_tags = {
        tag for when, src, dst, tag in sends if window.severs(src, dst, when)
    }
    # Ledger: every severed send is accounted as exactly one partition
    # drop; nothing else moves between buckets.
    assert ledger_with["dropped_partition"] == len(severed_tags)
    assert ledger_without["dropped_partition"] == 0
    assert ledger_with["messages_sent"] == ledger_without["messages_sent"]
    # Non-severed deliveries are identical envelope-for-envelope.
    for name in ("a1", "a2", "b1", "b2"):
        kept = [entry for entry in without[name] if entry[0] not in severed_tags]
        assert with_window[name] == kept


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**16), sends=send_strategy, window=window_strategy)
def test_healed_partition_delivers_nothing_sent_in_the_blackout(
    seed, sends, window
):
    """Run far past the heal: no delivered envelope crossing the
    partition may carry a send timestamp inside the window."""
    sends = [(when, src, dst, i) for i, (when, src, dst, _) in enumerate(sends)]
    deliveries, ledger = run_schedule(
        seed, sends, windows=(window,), until=10_000.0
    )
    assert ledger["messages_in_flight"] == 0
    by_tag = {tag: (when, src, dst) for when, src, dst, tag in sends}
    for _name, entries in deliveries.items():
        for tag, sent_at, _delivered_at in entries:
            when, src, dst = by_tag[tag]
            assert not window.severs(src, dst, when)


def test_window_validation():
    with pytest.raises(ValueError):
        PartitionWindow(("a",), ("b",), 10.0, 10.0)  # empty interval
    with pytest.raises(ValueError):
        PartitionWindow(("a",), ("a", "b"), 0.0, 1.0)  # overlap
    with pytest.raises(ValueError):
        PartitionWindow((), ("b",), 0.0, 1.0)  # empty side


def test_window_is_bidirectional_and_half_open():
    w = PartitionWindow(("a1",), ("b1",), 100.0, 200.0)
    assert w.severs("a1", "b1", 100.0)
    assert w.severs("b1", "a1", 150.0)
    assert not w.severs("a1", "b1", 200.0)  # end is exclusive
    assert not w.severs("a1", "a2", 150.0)  # same side unaffected
    assert not w.severs("c", "b1", 150.0)  # outsiders unaffected
