"""Tests for the command-line interface."""

import pytest

from repro.__main__ import EXPERIMENTS, main


def test_list_prints_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_run_single_experiment(capsys):
    code = main(["run", "analysis-flush", "--scale", "0.05"])
    out = capsys.readouterr().out
    assert code == 0
    assert "flushes_per_request" in out
    assert "[PASS]" in out


def test_workload_command(capsys):
    code = main(
        ["workload", "NoLog", "--requests", "10"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "completed requests: 10" in out
    assert "throughput" in out


def test_workload_verifies_exactly_once(capsys):
    code = main(
        ["workload", "LoOptimistic", "--requests", "15", "--crash-every", "7"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "exactly-once:       verified" in out
    assert "crashes:            2" in out


def test_workload_atomic_sv_exactly_once_with_concurrent_clients(capsys):
    # With the paper's separate read+write accesses two clients lose
    # counter updates; the atomic RMW option keeps exactly-once sound.
    code = main(
        ["workload", "LoOptimistic", "--requests", "8", "--clients", "2",
         "--atomic-sv", "--crash-every", "6"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "exactly-once:       verified" in out


def test_fuzz_exhaustive_smoke(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main(["fuzz", "--max-schedules", "5", "--quiet"])
    out = capsys.readouterr().out
    assert code == 0
    assert "fuzz exhaustive: 5 schedules" in out
    assert "0 failures" in out
    assert not (tmp_path / "fuzz-artifact.json").exists()


def test_fuzz_random_smoke(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main(["fuzz", "--mode", "random", "--seeds", "3", "--quiet"])
    out = capsys.readouterr().out
    assert code == 0
    assert "fuzz random: 3 schedules" in out


def test_fuzz_pairs_smoke(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main(["fuzz", "--pairs", "--max-schedules", "4", "--quiet"])
    out = capsys.readouterr().out
    assert code == 0
    assert "fuzz exhaustive-pairs: 4 schedules" in out
    # Two kills per pair schedule, so at least 8 crashes were injected.
    assert "8 crashes injected" in out


def test_fuzz_parallel_matches_sequential(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["fuzz", "--max-schedules", "4", "--jobs", "1", "--quiet"]) == 0
    seq = capsys.readouterr().out
    assert main(["fuzz", "--max-schedules", "4", "--jobs", "2", "--quiet"]) == 0
    par = capsys.readouterr().out
    assert seq.splitlines()[-1].rsplit(",", 1)[0] == (
        par.splitlines()[-1].rsplit(",", 1)[0]  # all but the wall time
    )


def test_run_experiment_with_jobs(capsys):
    code = main(["run", "analysis-flush", "--scale", "0.05", "--jobs", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "[PASS]" in out


def test_bench_fanout_smoke(capsys, tmp_path, monkeypatch):
    import json

    monkeypatch.chdir(tmp_path)
    code = main(["bench", "--fanout", "--smoke", "--jobs", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "all verdicts identical" in out
    report = json.loads((tmp_path / "BENCH_PR3.json").read_text())
    assert report["all_identical"] is True
    assert report["meta"]["jobs"] == 2


def test_fuzz_replay_case_seed(capsys):
    code = main(["fuzz", "--replay", "7"])
    out = capsys.readouterr().out
    assert code == 0
    assert "replaying case seed 7" in out
    assert "ran clean" in out


def test_fuzz_replay_file_round_trip(capsys, tmp_path):
    import json

    artifact = {
        "failures": [
            {
                "schedule": {"target": "msp2", "kills": [25], "seed": 0},
                "violations": ["synthetic"],
            }
        ]
    }
    path = tmp_path / "artifact.json"
    path.write_text(json.dumps(artifact))
    code = main(["fuzz", "--replay-file", str(path)])
    out = capsys.readouterr().out
    assert code == 0  # a healthy tree reproduces no violation
    assert "replaying recorded schedule" in out


def test_trace_command_writes_valid_artifacts(capsys, tmp_path):
    import json

    from repro.trace import validate_chrome_trace, validate_jsonl_lines

    chrome_path = tmp_path / "trace.json"
    jsonl_path = tmp_path / "trace.jsonl"
    code = main(
        ["trace", "--requests", "30", "--crash-every", "12",
         "--out", str(chrome_path), "--jsonl", str(jsonl_path)]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "completed requests: 30" in out
    assert "crashes:            2" in out
    assert "recovery-time breakdown" in out
    assert "recovery.scan" in out
    assert "network ledger" in out
    assert validate_chrome_trace(json.loads(chrome_path.read_text())) == []
    assert validate_jsonl_lines(jsonl_path.read_text().splitlines()) == []


def test_trace_command_without_crashes(capsys, tmp_path):
    code = main(
        ["trace", "--requests", "10", "--crash-every", "0",
         "--out", str(tmp_path / "t.json")]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "crashes:            0" in out


def test_scenarios_command_smoke(capsys, tmp_path):
    import json
    import pathlib

    matrix = pathlib.Path(__file__).resolve().parents[1] / "scenarios"
    md = tmp_path / "report.md"
    html = tmp_path / "report.html"
    raw = tmp_path / "report.json"
    code = main(
        ["scenarios", "--matrix", str(matrix / "smoke.yaml"), "--jobs", "2",
         "--out", str(md), "--html", str(html), "--json", str(raw)]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "all_clean=ok" in out
    assert "failover_beats_cold=ok" in out
    report = json.loads(raw.read_text())
    assert len(report["cells"]) == 12
    assert "# Scenario matrix: smoke" in md.read_text()
    assert html.read_text().startswith("<!doctype html>")


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["run", "not-an-experiment"])


def test_unknown_configuration_rejected():
    with pytest.raises(SystemExit):
        main(["workload", "Bogus"])
