"""Tests for the command-line interface."""

import pytest

from repro.__main__ import EXPERIMENTS, main


def test_list_prints_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_run_single_experiment(capsys):
    code = main(["run", "analysis-flush", "--scale", "0.05"])
    out = capsys.readouterr().out
    assert code == 0
    assert "flushes_per_request" in out
    assert "[PASS]" in out


def test_workload_command(capsys):
    code = main(
        ["workload", "NoLog", "--requests", "10"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "completed requests: 10" in out
    assert "throughput" in out


def test_workload_verifies_exactly_once(capsys):
    code = main(
        ["workload", "LoOptimistic", "--requests", "15", "--crash-every", "7"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "exactly-once:       verified" in out
    assert "crashes:            2" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["run", "not-an-experiment"])


def test_unknown_configuration_rejected():
    with pytest.raises(SystemExit):
        main(["workload", "Bogus"])
