"""Satellite: crashes around the checkpoint-driven truncate step.

Truncation runs only after the log anchor is durable, so the crash
window that matters is between anchor-durable and segment-recycle (the
``log.truncate.begin`` probe) and right after the recycle
(``log.truncate.end``).  A crash at either must recover exactly like a
crash anywhere else: the floor is not recovery state — recycled
segments are physically gone, and the next checkpoint simply
re-truncates.  These tests kill each MSP at both probes and assert the
invariant battery, plus the floor/anchor ordering directly.
"""

import pytest

from repro.fuzz import CrashSchedule, FuzzParams, discover_sites, run_schedule
from repro.fuzz.explorer import build_world, _crash_and_restart
from repro.fuzz.sites import CrashInjector

TRUNCATE_PHASES = ("log.truncate.begin", "log.truncate.end")

_params = FuzzParams()
_trace = discover_sites(_params, seed=0)


def _ordinals(owner: str, site: str, limit: int = 2) -> list[int]:
    found = [
        e.ordinal for e in _trace.events if e.owner == owner and e.site == site
    ]
    if len(found) > limit:
        found = [found[0], found[-1]]
    return found


def test_truncate_probes_fire_and_segments_recycle():
    """The fuzz workload genuinely exercises truncation: both probes
    appear in the discovery trace and a plain run recycles segments."""
    hist = _trace.site_histogram()
    for phase in TRUNCATE_PHASES:
        assert hist.get(phase, 0) > 0, f"{phase} never fired"
    workload = build_world(_params, seed=0, faults=None)
    workload.run(limit_ms=_params.limit_ms)
    recycled = sum(
        msp.store.recycled_segments for msp in (workload.msp1, workload.msp2)
    )
    assert recycled > 0, "fuzz params too coarse: no segment was recycled"


@pytest.mark.parametrize("target", ("msp1", "msp2"))
@pytest.mark.parametrize("phase", TRUNCATE_PHASES)
def test_crash_at_truncate_phase(target, phase):
    ordinals = _ordinals(target, phase)
    assert ordinals, f"{phase} never fired for {target}"
    for ordinal in ordinals:
        result = run_schedule(
            CrashSchedule(target=target, kills=(ordinal,), seed=0), _params
        )
        assert result.crashes_injected == 1
        assert result.violations == [], (phase, ordinal, result.violations)


@pytest.mark.parametrize("phase", TRUNCATE_PHASES)
def test_floor_never_passes_anchor_after_truncate_crash(phase):
    """Kill at the truncate step; after recovery and quiesce the floor
    must still trail the anchored checkpoint (truncation safety), and
    reads at the floor must work."""
    ordinal = _ordinals("msp2", phase)[0]
    workload = build_world(_params, seed=0, faults=None)
    injector = CrashInjector(
        workload.sim, "msp2", (ordinal,), _crash_and_restart(workload, "msp2")
    ).attach()
    workload.run(limit_ms=_params.limit_ms)
    workload.sim.run(until=workload.sim.now + _params.quiesce_ms)
    injector.detach()
    assert injector.crashes_injected == 1
    store = workload.msp2.store
    floor = store.truncate_lsn
    anchor_raw = store.read_anchor()
    assert anchor_raw is not None
    anchor = int.from_bytes(anchor_raw, "big")
    assert floor <= anchor
    record, _next = workload.msp2.log.record_at(anchor)
    assert record.min_lsn(anchor) >= floor
