"""Parallel fuzz runs must be byte-identical to sequential ones, and a
died/hung worker must surface as a replayable failure, never vanish."""

from repro.fuzz.explorer import (
    FuzzParams,
    FuzzReport,
    _merge_outcomes,
    enumerate_pair_schedules,
    explore_exhaustive,
    fuzz_random,
)


def test_pair_schedules_are_ordered_two_kill_and_deterministic():
    params = FuzzParams()
    schedules, counts = enumerate_pair_schedules(params, max_schedules=20)
    assert len(schedules) == 20
    for schedule in schedules:
        assert len(schedule.kills) == 2
        assert schedule.kills[0] < schedule.kills[1]
        assert schedule.target in counts
    again, _ = enumerate_pair_schedules(params, max_schedules=20)
    assert [s.to_dict() for s in schedules] == [s.to_dict() for s in again]


def test_pair_sampling_spans_the_product():
    params = FuzzParams()
    bounded, counts = enumerate_pair_schedules(params, stride=16, max_schedules=12)
    total_sites = sum(counts.values())
    assert total_sites > 0
    # Even sampling reaches late ordinals, not just the head of the
    # product: the largest sampled second kill is in the upper half.
    assert max(s.kills[1] for s in bounded) > max(counts.values()) // 2


def test_exhaustive_jobs_parity():
    params = FuzzParams()
    seq = explore_exhaustive(params, stride=150, jobs=1)
    par = explore_exhaustive(params, stride=150, jobs=2)
    assert seq.schedules_run > 1
    assert seq.to_dict() == par.to_dict()


def test_pairs_jobs_parity():
    params = FuzzParams()
    seq = explore_exhaustive(params, stride=64, max_schedules=6, jobs=1, pairs=True)
    par = explore_exhaustive(params, stride=64, max_schedules=6, jobs=2, pairs=True)
    assert seq.mode == "exhaustive-pairs"
    assert seq.schedules_run == 6
    assert seq.to_dict() == par.to_dict()


def test_random_jobs_parity():
    seq = fuzz_random(master_seed=3, runs=4, jobs=1)
    par = fuzz_random(master_seed=3, runs=4, jobs=2)
    assert seq.to_dict() == par.to_dict()


def test_worker_failure_becomes_replayable_failure():
    params = FuzzParams()
    schedules, _ = enumerate_pair_schedules(params, max_schedules=2)
    executed = [
        (None, "Traceback (most recent call last):\n  ...\nOSError: worker died"),
        (None, None),
    ]
    # A (result=None, error=None) pair can only come from a real run; use
    # a real sequential result for the healthy slot.
    from repro.fuzz.explorer import run_schedule

    executed[1] = (run_schedule(schedules[1], params), None)
    report = _merge_outcomes(FuzzReport(mode="test"), schedules, executed)
    assert report.schedules_run == 2
    assert len(report.failures) >= 1
    failure = report.failures[0]
    assert failure.violations == ["worker-failure: OSError: worker died"]
    # The spec is preserved in the standard artifact form, so
    # --replay-file reaches it directly.
    assert failure.schedule == schedules[0].to_dict()
