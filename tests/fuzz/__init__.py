"""Tests for the deterministic crash-schedule explorer."""
