"""Greedy schedule minimization against synthetic oracles."""

from repro.fuzz import CrashSchedule, FaultSpec, minimize_schedule


def test_minimizer_shrinks_synthetic_failure():
    # The "bug" only needs kill ordinal 42; everything else is baggage.
    schedule = CrashSchedule(
        target="msp2",
        kills=(5, 42, 99),
        seed=0,
        faults=FaultSpec(loss_prob=0.05, duplicate_prob=0.02, reorder_prob=0.1),
    )

    def still_fails(candidate: CrashSchedule) -> bool:
        return 42 in candidate.kills

    minimized, attempts = minimize_schedule(schedule, still_fails)
    assert minimized.kills == (42,)
    assert minimized.faults is None
    assert attempts > 0


def test_minimizer_keeps_jointly_required_kills():
    schedule = CrashSchedule(target="msp1", kills=(3, 8, 20), seed=0)

    def still_fails(candidate: CrashSchedule) -> bool:
        return 3 in candidate.kills and 20 in candidate.kills

    minimized, _ = minimize_schedule(schedule, still_fails)
    assert minimized.kills == (3, 20)


def test_minimizer_softens_fault_fields():
    # Only packet loss matters; duplication and reordering are noise.
    schedule = CrashSchedule(
        target="msp2",
        kills=(7,),
        seed=0,
        faults=FaultSpec(loss_prob=0.05, duplicate_prob=0.05, reorder_prob=0.25),
    )

    def still_fails(candidate: CrashSchedule) -> bool:
        return candidate.faults is not None and candidate.faults.loss_prob > 0

    minimized, _ = minimize_schedule(schedule, still_fails)
    assert minimized.faults is not None
    assert minimized.faults.loss_prob > 0
    assert minimized.faults.duplicate_prob == 0.0
    assert minimized.faults.reorder_prob == 0.0


def test_minimizer_returns_input_when_nothing_smaller_fails():
    schedule = CrashSchedule(target="msp1", kills=(11,), seed=0)
    minimized, _ = minimize_schedule(schedule, lambda s: s.kills == (11,))
    assert minimized == schedule


def test_minimizer_respects_attempt_budget():
    schedule = CrashSchedule(target="msp1", kills=tuple(range(50)), seed=0)
    calls = 0

    def still_fails(candidate: CrashSchedule) -> bool:
        nonlocal calls
        calls += 1
        return 49 in candidate.kills

    minimize_schedule(schedule, still_fails, max_attempts=10)
    # The budget bounds the passes; a few in-flight checks may finish.
    assert calls <= 10 + len(schedule.kills)
