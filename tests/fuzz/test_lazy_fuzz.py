"""Satellite: the invariant battery under ``recovery_mode: lazy``.

Lazy mode adds its own probe sites (``recovery.lazy.analyze``,
``recovery.session.begin``/``end``, ``recovery.pump.step``) that only
fire while a lazy restart is in flight — so, as with the eager
``recovery.*`` sites, a first kill mid-run opens the window and a
second kill ordinal lands *inside* the lazy recovery: during the
analysis scan, during one session's on-demand chain replay, or between
pump steps while the MSP is serving traffic partially recovered.  The
battery checks that every such crash still recovers to exactly-once
(including the lazy invariants: no session served before its chain is
replayed, no session left pending after quiesce).
"""

from repro.fuzz import CrashSchedule, FuzzParams, explore_exhaustive, fuzz_random, run_schedule
from repro.fuzz.explorer import build_world, _crash_and_restart
from repro.fuzz.sites import CrashInjector, TraceRecorder

LAZY_SITES = (
    "recovery.lazy.analyze",
    "recovery.session.begin",
    "recovery.session.end",
    "recovery.pump.step",
)

#: Mid-run first kill; its lazy recovery runs against live traffic.
#: (An earlier kill finds no live sessions — the pump then has nothing
#: to drain and only ``recovery.lazy.analyze`` fires.)
FIRST_KILL = 150

_lazy = FuzzParams(recovery_mode="lazy")
_lazy4 = FuzzParams(recovery_mode="lazy", log_partitions=4)


def test_lazy_exhaustive_smoke_is_clean():
    report = explore_exhaustive(_lazy, seed=0, max_schedules=16)
    assert report.ok, [f.to_dict() for f in report.failures]
    assert report.schedules_run == 16
    assert report.crashes_injected > 0


def test_lazy_partitioned_random_smoke_is_clean():
    report = fuzz_random(master_seed=0, runs=8, params=_lazy4)
    assert report.ok, [f.to_dict() for f in report.failures]
    assert report.crashes_injected > 0


def _lazy_ordinals(target: str, params: FuzzParams) -> dict[str, list[int]]:
    """All ordinals of each lazy probe site reached after the first kill."""
    workload = build_world(params, seed=0, faults=None)
    recorder = TraceRecorder(workload.sim).attach()
    injector = CrashInjector(
        workload.sim, target, (FIRST_KILL,), _crash_and_restart(workload, target)
    ).attach()
    workload.run(limit_ms=params.limit_ms)
    recorder.detach()
    injector.detach()
    assert injector.crashes_injected == 1
    ordinals: dict[str, list[int]] = {}
    for event in recorder.events:
        if event.owner == target and event.site in LAZY_SITES:
            ordinals.setdefault(event.site, []).append(event.ordinal)
    return ordinals


def test_crash_during_lazy_replay_recovers():
    """Kill msp2 inside its own lazy recovery, at every lazy phase:
    right after analysis opens the MSP, at the begin/end of a session's
    chain replay, and at a pump step between replays."""
    ordinals = _lazy_ordinals("msp2", _lazy)
    assert set(ordinals) == set(LAZY_SITES), ordinals
    for site in LAZY_SITES:
        sites = ordinals[site]
        # First and last firing: the first lands while almost every
        # session is still pending, the last while almost none are.
        for ordinal in {sites[0], sites[-1]}:
            result = run_schedule(
                CrashSchedule(target="msp2", kills=(FIRST_KILL, ordinal), seed=0),
                _lazy,
            )
            assert result.crashes_injected == 2, (site, ordinal)
            assert result.violations == [], (site, ordinal, result.violations)


def test_crash_while_partially_recovered_partitioned():
    """P=4: a crash mid-pump leaves some sessions replayed and some
    pending; the next recovery re-derives every chain head from the
    merged scan and the battery still holds."""
    ordinals = _lazy_ordinals("msp2", _lazy4)
    assert "recovery.pump.step" in ordinals, ordinals
    steps = ordinals["recovery.pump.step"]
    mid = steps[len(steps) // 2]
    result = run_schedule(
        CrashSchedule(target="msp2", kills=(FIRST_KILL, mid), seed=0), _lazy4
    )
    assert result.crashes_injected == 2
    assert result.violations == [], result.violations


def test_third_crash_during_second_lazy_recovery():
    ordinals = _lazy_ordinals("msp2", _lazy)
    mid = ordinals["recovery.session.begin"][0]
    result = run_schedule(
        CrashSchedule(target="msp2", kills=(FIRST_KILL, mid, mid + 20), seed=0),
        _lazy,
    )
    assert result.crashes_injected == 3
    assert result.violations == [], result.violations
