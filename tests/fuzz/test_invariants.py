"""The invariant battery: passes a clean world, catches corruption."""

import pytest

from repro.core.session import SessionStatus
from repro.fuzz import FuzzParams, check_world
from repro.fuzz.explorer import build_world
from repro.fuzz.invariants import (
    check_durable_log,
    check_exactly_once,
    check_no_orphans,
    check_running,
    check_sv_chains,
)


@pytest.fixture
def world():
    params = FuzzParams(num_clients=1, requests_per_client=3)
    workload = build_world(params, seed=0, faults=None)
    workload.run(limit_ms=params.limit_ms)
    return workload


def test_clean_world_passes_battery(world):
    assert check_world(world, [world.msp1, world.msp2]) == []


def test_detects_lost_counter_update(world):
    sv = world.msp1.shared["SV0"]
    sv.value = (0).to_bytes(8, "big") + sv.value[8:]
    violations = check_exactly_once(world)
    assert violations and violations[0].startswith("exactly-once:")


def test_detects_stalled_client(world):
    world.params.requests_per_client += 1
    violations = check_exactly_once(world)
    assert any(v.startswith("liveness:") for v in violations)


def test_detects_stuck_recovering_session(world):
    session = next(iter(world.msp1.sessions.values()))
    session.status = SessionStatus.RECOVERING
    violations = check_no_orphans(world.msp1)
    assert any("stuck in RECOVERING" in v for v in violations)


def test_detects_unserved_msp(world):
    world.msp2.crash()
    assert check_running(world.msp2) == [
        "recovery: msp2 is not serving after quiesce"
    ]


def test_detects_broken_sv_chain(world):
    sv = world.msp1.shared["SV0"]
    sv.last_write_lsn = world.msp1.store.end + 10_000
    violations = check_sv_chains(world.msp1)
    assert violations and "unreadable record" in violations[0]


def test_detects_corrupt_durable_prefix(world):
    store = world.msp1.store
    assert store.durable_end > 0
    offset = store.durable_end // 2
    store._segments[offset // store.segment_bytes][offset % store.segment_bytes] ^= 0xFF
    violations = check_durable_log(world.msp1)
    assert violations and violations[0].startswith("durable-log:")


def test_detects_anchor_past_durable_boundary(world):
    store = world.msp1.store
    store.write_anchor((store.durable_end + 4096).to_bytes(8, "big"))
    store.flush_anchor()
    violations = check_durable_log(world.msp1)
    assert any("points past the durable boundary" in v for v in violations)


def test_detects_anchor_at_wrong_record(world):
    # Re-point the anchor at a shared-variable write record: analysis
    # must never treat that as a checkpoint.
    store = world.msp1.store
    wrong_lsn = world.msp1.shared["SV0"].last_write_lsn
    assert wrong_lsn >= 0
    store.write_anchor(wrong_lsn.to_bytes(8, "big"))
    store.flush_anchor()
    violations = check_durable_log(world.msp1)
    assert violations and "anchor" in violations[0]
