"""Satellite: crashes at every checkpoint phase boundary.

The paper's fuzzy MSP checkpoint (§3.4) writes the checkpoint record
into the log stream and only re-points the durable anchor *after* the
record is flushed.  A crash between any two phases must therefore leave
recovery with a usable anchor: either the previous checkpoint (the new
one was torn) or the new one (fully durable).  These tests kill the MSP
at each instrumented phase boundary — including the session and
shared-variable checkpoint phases — and assert the invariant battery,
plus the anchor property directly.
"""

import pytest

from repro.core.records import MspCheckpointRecord
from repro.fuzz import CrashSchedule, FuzzParams, discover_sites, run_schedule
from repro.fuzz.explorer import build_world, _crash_and_restart
from repro.fuzz.sites import CrashInjector

MSP_CKPT_PHASES = (
    "ckpt.msp.begin",
    "ckpt.msp.forced",
    "ckpt.msp.logged",
    "ckpt.msp.flushed",
    "ckpt.msp.anchored",
)
OTHER_CKPT_PHASES = (
    "ckpt.session.begin",
    "ckpt.session.flushed",
    "ckpt.session.logged",
    "ckpt.sv.begin",
    "ckpt.sv.flushed",
    "ckpt.sv.logged",
)

_params = FuzzParams()
_trace = discover_sites(_params, seed=0)


def _ordinals(owner: str, site: str, limit: int = 2) -> list[int]:
    found = [
        e.ordinal for e in _trace.events if e.owner == owner and e.site == site
    ]
    # Sample the first and the last firing: early checkpoints run against
    # live traffic, late ones against the idle tail.
    if len(found) > limit:
        found = [found[0], found[-1]]
    return found


@pytest.mark.parametrize("target", ("msp1", "msp2"))
@pytest.mark.parametrize("phase", MSP_CKPT_PHASES)
def test_crash_at_msp_checkpoint_phase(target, phase):
    ordinals = _ordinals(target, phase)
    assert ordinals, f"{phase} never fired for {target}"
    for ordinal in ordinals:
        result = run_schedule(
            CrashSchedule(target=target, kills=(ordinal,), seed=0), _params
        )
        assert result.crashes_injected == 1
        assert result.violations == [], (phase, ordinal, result.violations)


@pytest.mark.parametrize("phase", OTHER_CKPT_PHASES)
def test_crash_at_session_and_sv_checkpoint_phase(phase):
    ran = 0
    for target in ("msp1", "msp2"):
        for ordinal in _ordinals(target, phase):
            result = run_schedule(
                CrashSchedule(target=target, kills=(ordinal,), seed=0), _params
            )
            assert result.crashes_injected == 1
            assert result.violations == [], (target, phase, ordinal)
            ran += 1
    assert ran > 0, f"{phase} never fired for either MSP"


@pytest.mark.parametrize("phase", ("ckpt.msp.logged", "ckpt.msp.flushed"))
def test_torn_checkpoint_anchor_never_used_by_analysis(phase):
    """Kill between checkpoint phases; recovery's anchor must point at a
    complete, durable MSP checkpoint record — never the torn one."""
    ordinal = _ordinals("msp2", phase)[0]
    workload = build_world(_params, seed=0, faults=None)
    injector = CrashInjector(
        workload.sim, "msp2", (ordinal,), _crash_and_restart(workload, "msp2")
    ).attach()
    workload.run(limit_ms=_params.limit_ms)
    workload.sim.run(until=workload.sim.now + _params.quiesce_ms)
    injector.detach()
    assert injector.crashes_injected == 1
    store = workload.msp2.store
    anchor_raw = store.read_anchor()
    assert anchor_raw is not None
    anchor = int.from_bytes(anchor_raw, "big")
    assert anchor < store.durable_end
    record, _next = workload.msp2.log.record_at(anchor)
    assert isinstance(record, MspCheckpointRecord)
    assert workload.msp2.log.is_durable(anchor)
