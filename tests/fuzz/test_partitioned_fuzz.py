"""Satellite: the invariant battery against the partitioned log.

Everything the single-log battery checks must hold at ``--partitions
4``: crashes landing inside any one partition's flush, DV-ordered
merge recovery (``recovery_merge_assert`` is on by default in fuzz
worlds), and the cross-incarnation aliasing regression the recovery
rewind exists for — case 33 crashes msp1 so that one partition keeps a
durable record whose cross-partition dependency was lost, and a later
crash re-reads the offsets the first recovery excised.
"""

from repro.fuzz import (
    CrashSchedule,
    FuzzParams,
    discover_sites,
    explore_exhaustive,
    fuzz_random,
    run_random_case,
    run_schedule,
)

_params4 = FuzzParams(log_partitions=4)


def test_partitioned_exhaustive_smoke_is_clean():
    report = explore_exhaustive(_params4, seed=0, max_schedules=16)
    assert report.ok, [f.to_dict() for f in report.failures]
    assert report.schedules_run == 16
    assert report.crashes_injected > 0


def test_partitioned_random_smoke_is_clean():
    report = fuzz_random(master_seed=0, runs=8, params=_params4)
    assert report.ok, [f.to_dict() for f in report.failures]
    assert report.crashes_injected > 0


def test_crash_during_partition_flush():
    """Kill each MSP inside a physical partition write: the other
    partitions' flushes are in flight, so recovery sees a mix of
    durable prefixes — exactly the consistent-cut case."""
    trace = discover_sites(_params4, seed=0)
    ran = 0
    for target in ("msp1", "msp2"):
        ordinals = [
            e.ordinal
            for e in trace.events
            if e.owner == target and e.site == "log.flush.begin"
        ]
        assert ordinals, f"log.flush.begin never fired for {target}"
        # First, middle and last firing: early flushes run against cold
        # partitions, late ones against every partition in flight.
        for ordinal in {ordinals[0], ordinals[len(ordinals) // 2], ordinals[-1]}:
            result = run_schedule(
                CrashSchedule(target=target, kills=(ordinal,), seed=0), _params4
            )
            assert result.crashes_injected == 1
            assert result.violations == [], (target, ordinal, result.violations)
            ran += 1
    assert ran >= 4


def test_cross_incarnation_aliasing_case33_regression():
    """Random case 33 at P=4: recovery 1 excises a durable suffix of
    one partition; without the physical rewind, recovery 2 accepted a
    dead record against an offset the new incarnation had reused."""
    result = run_random_case(33, _params4)
    assert result.violations == [], result.violations
    assert result.crashes_injected == 3
