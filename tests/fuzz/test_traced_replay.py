"""Traced fuzz replays: same verdicts, plus a dumpable timeline."""

import json

from repro.fuzz import CrashSchedule, FuzzParams, run_random_case, run_schedule
from repro.fuzz.cli import _dump_trace, _trace_paths
from repro.trace import validate_chrome_trace, validate_jsonl_lines


def test_run_schedule_traced_matches_untraced_verdict():
    schedule = CrashSchedule(target="msp2", kills=(25,), seed=0)
    params = FuzzParams()
    plain = run_schedule(schedule, params)
    traced = run_schedule(schedule, params, trace=True)
    assert plain.tracer is None
    assert traced.tracer is not None
    # Tracing must not perturb the seeded run: identical fingerprint.
    assert traced.fingerprint() == plain.fingerprint()
    assert traced.violations == plain.violations == []
    # The trace carries the crash and its recovery.
    names = {e.name for e in traced.tracer.events}
    assert "msp.crash" in names
    assert "recovery" in names
    # Component counters were folded in at the end of the run.
    counters = traced.tracer.metrics.to_dict()["counters"]
    assert counters["msp.msp2.crashes"] >= 1
    assert "net.messages_sent" in counters


def test_run_random_case_traced_matches_untraced_verdict():
    plain = run_random_case(12345, FuzzParams())
    traced = run_random_case(12345, FuzzParams(), trace=True)
    assert traced.fingerprint() == plain.fingerprint()
    assert traced.tracer is not None and len(traced.tracer.events) > 0


def test_dump_trace_writes_valid_artifacts(tmp_path, capsys):
    schedule = CrashSchedule(target="msp2", kills=(25,), seed=0)
    result = run_schedule(schedule, FuzzParams(), trace=True)
    out = str(tmp_path / "fuzz-artifact.json")
    _dump_trace(result.tracer, out)
    chrome_path, jsonl_path = _trace_paths(out)
    assert chrome_path == str(tmp_path / "fuzz-artifact.trace.json")
    with open(chrome_path) as fh:
        assert validate_chrome_trace(json.load(fh)) == []
    with open(jsonl_path) as fh:
        assert validate_jsonl_lines(fh.read().splitlines()) == []
    assert "wrote failure trace" in capsys.readouterr().err
