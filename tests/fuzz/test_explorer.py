"""Exhaustive and random explorer modes, seeded replay determinism."""

from repro.fuzz import (
    CrashSchedule,
    FaultSpec,
    FuzzParams,
    case_seed_for,
    enumerate_schedules,
    explore_exhaustive,
    fuzz_random,
    run_random_case,
    schedule_from_seed,
)


def test_exhaustive_smoke_is_clean():
    report = explore_exhaustive(FuzzParams(), seed=0, max_schedules=30)
    assert report.ok, [f.to_dict() for f in report.failures]
    assert report.schedules_run == 30
    assert report.crashes_injected > 0
    assert sum(report.sites_discovered.values()) >= 400


def test_enumerate_schedules_covers_both_targets():
    schedules, counts = enumerate_schedules(FuzzParams(), seed=0, stride=50)
    targets = {s.target for s in schedules}
    assert targets == {"msp1", "msp2"}
    assert counts["msp1"] >= 200 and counts["msp2"] >= 200
    # Stride 50 keeps the smoke pass small but spread over the run.
    assert len(schedules) == sum(-(-c // 50) for c in counts.values())


def test_enumerate_truncation_is_evenly_spaced():
    full, _ = enumerate_schedules(FuzzParams(), seed=0)
    capped, _ = enumerate_schedules(FuzzParams(), seed=0, max_schedules=10)
    assert len(capped) == 10
    # Both the head and the tail of the schedule list are sampled.
    assert capped[0] == full[0]
    assert capped[-1].kills[0] > full[len(full) // 2].kills[0] or (
        capped[-1].target != full[0].target
    )


def test_random_mode_is_clean():
    report = fuzz_random(master_seed=0, runs=10)
    assert report.ok, [f.to_dict() for f in report.failures]
    assert report.schedules_run == 10
    assert report.crashes_injected > 0


def test_replay_reproduces_fingerprint():
    params = FuzzParams()
    for case_seed in (case_seed_for(0, 3), case_seed_for(1, 7)):
        first = run_random_case(case_seed, params)
        second = run_random_case(case_seed, params)
        assert first.fingerprint() == second.fingerprint()


def test_schedule_from_seed_is_deterministic():
    params = FuzzParams()
    a = schedule_from_seed(12345, params)
    b = schedule_from_seed(12345, params)
    assert a == b
    assert 1 <= len(a.kills) <= 3
    assert a.target in params.targets


def test_schedule_from_seed_varies_across_seeds():
    params = FuzzParams()
    schedules = {schedule_from_seed(case_seed_for(0, i), params) for i in range(20)}
    assert len(schedules) > 10
    assert any(s.faults is not None for s in schedules)
    assert any(s.faults is None for s in schedules)


def test_schedule_dict_roundtrip():
    plain = CrashSchedule(target="msp1", kills=(4, 9), seed=17)
    faulty = CrashSchedule(
        target="msp2",
        kills=(2,),
        seed=23,
        faults=FaultSpec(loss_prob=0.05, duplicate_prob=0.02, reorder_prob=0.1),
    )
    for schedule in (plain, faulty):
        assert CrashSchedule.from_dict(schedule.to_dict()) == schedule


def test_failure_report_shape():
    report = fuzz_random(master_seed=0, runs=2)
    data = report.to_dict()
    assert data["mode"] == "random"
    assert data["schedules_run"] == 2
    assert isinstance(data["failures"], list)
