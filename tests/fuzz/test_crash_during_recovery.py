"""Crashes landing *inside* crash recovery itself.

Ordinal counting continues across crashes, so a second kill ordinal can
target any of the ``recovery.*`` probe sites reached while the first
crash is being recovered — the paper's claim that recovery is itself
fail-stop safe (a crash during recovery restarts recovery, which is
idempotent because analysis only reads the durable prefix).
"""

from repro.fuzz import CrashSchedule, FuzzParams, run_schedule
from repro.fuzz.explorer import build_world, _crash_and_restart
from repro.fuzz.sites import CrashInjector, TraceRecorder

RECOVERY_SITES = (
    "recovery.begin",
    "recovery.anchor-read",
    "recovery.scanned",
    "recovery.analyzed",
    "recovery.announced",
    "recovery.checkpointed",
    "recovery.end",
)

#: Mid-run first kill; its recovery runs against live client traffic.
FIRST_KILL = 60


def _recovery_ordinals(target: str) -> dict[str, int]:
    """Ordinals of each recovery step reached after the first kill."""
    params = FuzzParams()
    workload = build_world(params, seed=0, faults=None)
    recorder = TraceRecorder(workload.sim).attach()
    injector = CrashInjector(
        workload.sim, target, (FIRST_KILL,), _crash_and_restart(workload, target)
    ).attach()
    workload.run(limit_ms=params.limit_ms)
    recorder.detach()
    injector.detach()
    assert injector.crashes_injected == 1
    ordinals: dict[str, int] = {}
    for event in recorder.events:
        if event.owner == target and event.site.startswith("recovery."):
            ordinals.setdefault(event.site, event.ordinal)
    return ordinals


def test_second_crash_during_recovery_also_recovers():
    params = FuzzParams()
    for target in ("msp1", "msp2"):
        ordinals = _recovery_ordinals(target)
        assert set(ordinals) == set(RECOVERY_SITES), (target, ordinals)
        for site, ordinal in sorted(ordinals.items()):
            result = run_schedule(
                CrashSchedule(target=target, kills=(FIRST_KILL, ordinal), seed=0),
                params,
            )
            assert result.crashes_injected == 2, (target, site)
            assert result.violations == [], (target, site, result.violations)


def test_third_crash_during_second_recovery():
    params = FuzzParams()
    ordinals = _recovery_ordinals("msp2")
    mid = ordinals["recovery.scanned"]
    result = run_schedule(
        CrashSchedule(target="msp2", kills=(FIRST_KILL, mid, mid + 40), seed=0),
        params,
    )
    assert result.crashes_injected == 3
    assert result.violations == []
