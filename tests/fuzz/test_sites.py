"""Site discovery and the crash injector."""

from repro.fuzz import CrashSchedule, FuzzParams, discover_sites, run_schedule

#: The acceptance bar: the default workload must expose at least this
#: many distinct crash sites per MSP.
MIN_SITES = 200

#: Every instrumented layer must appear in a discovery trace.
EXPECTED_SITES = (
    "kernel.spawn",
    "log.append",
    "log.flush.begin",
    "log.flush.block",
    "log.flush.end",
    "log.anchor.staged",
    "log.anchor.end",
    "msp.open",
    "msp.request",
    "msp.reply",
    "net.deliver",
    "ckpt.msp.begin",
    "ckpt.msp.logged",
    "ckpt.msp.flushed",
    "ckpt.msp.anchored",
    "ckpt.session.begin",
    "ckpt.session.flushed",
    "ckpt.session.logged",
)


def test_discovery_enumerates_enough_sites():
    recorder = discover_sites(FuzzParams(), seed=0)
    assert recorder.count_for("msp1") >= MIN_SITES
    assert recorder.count_for("msp2") >= MIN_SITES
    histogram = recorder.site_histogram()
    for site in EXPECTED_SITES:
        assert histogram.get(site, 0) > 0, f"site {site!r} never fired"


def test_discovery_trace_is_deterministic():
    a = discover_sites(FuzzParams(), seed=3)
    b = discover_sites(FuzzParams(), seed=3)
    assert a.fingerprint() == b.fingerprint()
    assert len(a.events) > 0


def test_different_seeds_reach_same_site_kinds():
    # Timing shifts with the seed but the instrumented layers do not.
    a = discover_sites(FuzzParams(), seed=0)
    b = discover_sites(FuzzParams(), seed=99)
    assert set(a.site_histogram()) == set(b.site_histogram())


def test_injector_kills_and_world_recovers():
    params = FuzzParams()
    result = run_schedule(CrashSchedule(target="msp2", kills=(25,), seed=0), params)
    assert result.crashes_injected == 1
    assert result.violations == []
    assert result.completed_requests == params.num_clients * params.requests_per_client


def test_kill_beyond_trace_is_a_noop():
    params = FuzzParams()
    result = run_schedule(
        CrashSchedule(target="msp2", kills=(10**9,), seed=0), params
    )
    assert result.crashes_injected == 0
    assert result.violations == []


def test_multi_kill_schedule_injects_each():
    params = FuzzParams()
    result = run_schedule(
        CrashSchedule(target="msp1", kills=(30, 200, 400), seed=0), params
    )
    assert result.crashes_injected == 3
    assert result.violations == []
