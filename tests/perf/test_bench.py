"""Tests for the wall-clock benchmark suite and the fan-out report."""

from repro.perf.bench import (
    BENCHMARKS,
    bench_recovery_scan,
    format_report,
    run_benchmark_cell,
    run_benchmarks,
)


def test_recovery_scan_benchmark_shape():
    run = bench_recovery_scan(scale=0.005)
    assert run["records_per_s"] > 0
    assert run["ns_per_record"] > 0
    # One row per scanned log length, longest last — the sweep that
    # shows analysis cost is linear in log length.
    lengths = run["lengths"]
    assert len(lengths) == 3
    assert [row["records"] for row in lengths] == sorted(
        row["records"] for row in lengths
    )
    assert run["records"] == lengths[-1]["records"]


def test_run_benchmark_cell_matches_registry():
    assert "recovery_scan" in BENCHMARKS
    cell = run_benchmark_cell("scan", scale=0.005, repeat=1)
    assert cell["seconds"] > 0
    assert "decode_cache_misses" in cell


def test_run_benchmarks_sequential_smoke():
    report = run_benchmarks(scale=0.002, repeat=1, jobs=1)
    assert set(report["benchmarks"]) == set(BENCHMARKS)
    assert report["meta"]["jobs"] == 1
    assert report["meta"]["cpu_count"] >= 1


def test_format_report_snapshot_with_counters():
    # A synthetic report pins the exact rendering, counters included.
    report = {
        "benchmarks": {
            "append_flush": {
                "seconds": 1.0,
                "records_per_s": 12345.6,
                "flush_requests": 10,
                "physical_flushes": 4,
                "coalesced_flushes": 6,
            },
            "scan": {
                "seconds": 0.5,
                "mb_per_s": 250.0,
                "decode_cache_hits": 7,
                "decode_cache_misses": 3,
            },
        },
        "speedup": {"scan": 1.25},
    }
    assert format_report(report) == "\n".join(
        [
            "append_flush   records_per_s            12,345.6",
            "               counters: flush_requests=10 physical_flushes=4 "
            "coalesced_flushes=6",
            "scan           mb_per_s                    250.0   "
            "(1.25x vs baseline)",
            "               counters: decode_cache_hits=7 decode_cache_misses=3",
        ]
    )


def test_fanout_report_smoke():
    from repro.perf.fanout import format_fanout_report, run_fanout_report

    report = run_fanout_report(
        jobs=2,
        fuzz_stride=256,
        pair_schedules=4,
        random_cases=2,
        bench_scale=0.002,
        sweep_scale=0.01,
    )
    assert set(report["sections"]) == {
        "fuzz_exhaustive",
        "fuzz_pairs",
        "fuzz_random",
        "bench_cells",
        "experiment_sweep",
    }
    # The determinism contract: parallel verdicts equal sequential ones.
    assert report["all_identical"]
    for section in report["sections"].values():
        assert section["sequential_s"] > 0 and section["parallel_s"] > 0
    text = format_fanout_report(report)
    assert "all verdicts identical" in text
    assert "jobs=2" in text
