"""Tests for the wall-clock benchmark suite and the fan-out report."""

from repro.perf.bench import (
    BENCHMARKS,
    bench_recovery_scan,
    format_report,
    run_benchmark_cell,
    run_benchmarks,
)


def test_recovery_scan_benchmark_shape():
    run = bench_recovery_scan(scale=0.005)
    assert run["records_per_s"] > 0
    assert run["ns_per_record"] > 0
    # One row per scanned log length, longest last — the sweep that
    # shows analysis cost is linear in log length.
    lengths = run["lengths"]
    assert len(lengths) == 3
    assert [row["records"] for row in lengths] == sorted(
        row["records"] for row in lengths
    )
    assert run["records"] == lengths[-1]["records"]


def test_run_benchmark_cell_matches_registry():
    assert "recovery_scan" in BENCHMARKS
    cell = run_benchmark_cell("scan", scale=0.005, repeat=1)
    assert cell["seconds"] > 0
    assert "decode_cache_misses" in cell


def test_run_benchmarks_sequential_smoke():
    report = run_benchmarks(scale=0.002, repeat=1, jobs=1)
    assert set(report["benchmarks"]) == set(BENCHMARKS)
    assert report["meta"]["jobs"] == 1
    assert report["meta"]["cpu_count"] >= 1


def test_format_report_snapshot_with_counters():
    # A synthetic report pins the exact rendering, counters included.
    report = {
        "benchmarks": {
            "append_flush": {
                "seconds": 1.0,
                "records_per_s": 12345.6,
                "flush_requests": 10,
                "physical_flushes": 4,
                "coalesced_flushes": 6,
            },
            "scan": {
                "seconds": 0.5,
                "mb_per_s": 250.0,
                "decode_cache_hits": 7,
                "decode_cache_misses": 3,
            },
            "log_space": {
                "seconds": 0.25,
                "records_per_s": 98765.4,
                "truncated_bytes": 400000,
                "recycled_segments": 24,
                "live_bytes": 50000,
            },
        },
        "speedup": {"scan": 1.25},
    }
    assert format_report(report) == "\n".join(
        [
            "append_flush   records_per_s            12,345.6",
            "               counters: flush_requests=10 physical_flushes=4 "
            "coalesced_flushes=6",
            "scan           mb_per_s                    250.0   "
            "(1.25x vs baseline)",
            "               counters: decode_cache_hits=7 decode_cache_misses=3",
            "log_space      records_per_s            98,765.4",
            "               counters: truncated_bytes=400000 "
            "recycled_segments=24 live_bytes=50000",
        ]
    )


def test_log_space_cell_bounds_live_bytes():
    from repro.perf.bench import bench_log_space

    run = bench_log_space(scale=0.1)
    on, off = run["truncation_on"], run["truncation_off"]
    # Same appends either way; truncation reclaims, the control grows.
    assert on["appended_bytes"] == off["appended_bytes"]
    assert on["recycled_segments"] > 0
    assert off["recycled_segments"] == 0
    assert on["final_live_bytes"] < off["final_live_bytes"]
    assert off["final_live_bytes"] == off["appended_bytes"]
    # The off-mode rows grow linearly; the on-mode peak stays bounded.
    rows_off = off["rows"]
    assert rows_off[-1]["live_bytes"] > 2 * rows_off[0]["live_bytes"]
    interval = run["ckpt_every"] * (on["appended_bytes"] / run["records"])
    assert on["peak_live_bytes"] <= interval + 4 * run["segment_bytes"]


def test_fanout_report_smoke():
    from repro.perf.fanout import format_fanout_report, run_fanout_report

    report = run_fanout_report(
        jobs=2,
        fuzz_stride=256,
        pair_schedules=4,
        random_cases=2,
        bench_scale=0.002,
        sweep_scale=0.01,
    )
    assert set(report["sections"]) == {
        "fuzz_exhaustive",
        "fuzz_pairs",
        "fuzz_random",
        "bench_cells",
        "experiment_sweep",
    }
    # The determinism contract: parallel verdicts equal sequential ones.
    assert report["all_identical"]
    for section in report["sections"].values():
        assert section["sequential_s"] > 0 and section["parallel_s"] > 0
    text = format_fanout_report(report)
    assert "all verdicts identical" in text
    assert "jobs=2" in text


def test_instant_restart_cell_shape_and_invariants():
    from repro.perf.bench import bench_instant_restart

    run = bench_instant_restart(scale=0.0)  # floor: 64 sessions
    assert run["sessions"] == 64
    assert set(run["modes"]) == {"eager_p1", "lazy_p1", "eager_p4", "lazy_p4"}
    for key, cell in run["modes"].items():
        assert cell["served_before_recovery"] == 0, key
        assert cell["ttfr_ms"] > 0, key
        # Lazy opens before it finishes; eager opens when it finishes.
        if cell["mode"] == "lazy":
            assert cell["lazy_recoveries"] == 64, key
            assert (
                cell["inline_recoveries"] + cell["pump_recoveries"]
                == cell["lazy_recoveries"]
            ), key
            assert cell["ttfr_ms"] < cell["full_recovery_ms"], key
        else:
            assert cell["lazy_recoveries"] == 0, key
    # Even at smoke scale the lazy restart must serve first sooner; the
    # committed report gates the full 5x claim at >= 10k sessions.
    assert run["ttfr_speedup_p1"] > 1.0
    assert run["ttfr_speedup_p4"] > 1.0


def test_log_partitions_cell_scales_with_partitions():
    from repro.perf.bench import bench_log_partitions

    run = bench_log_partitions(scale=0.05)
    cells = run["cells"]
    assert set(cells) == {"1", "2", "4", "8"}
    for P, cell in cells.items():
        # The session streams must actually spread over the partitions.
        assert len(cell["partition_appends"]) == int(P)
        assert cell["flush_wait_p99_ms"] >= cell["flush_wait_mean_ms"] > 0
    # Simulated group commit gets strictly cheaper with more disks even
    # at smoke scale; the committed report gates the full 1.8x claim.
    assert run["speedup_p4_sim"] > 1.0
    assert cells["4"]["flush_wait_mean_ms"] < cells["1"]["flush_wait_mean_ms"]
