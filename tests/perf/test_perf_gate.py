"""Tests for the CI perf-regression gate's comparison logic."""

import importlib.util
import pathlib

_spec = importlib.util.spec_from_file_location(
    "perf_gate",
    pathlib.Path(__file__).resolve().parents[2] / "scripts" / "perf_gate.py",
)
perf_gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(perf_gate)


def _report(seq=1.0, par=0.5, verdict="v", identical=True):
    return {
        "all_identical": identical,
        "sections": {
            "fuzz_exhaustive": {
                "sequential_s": seq,
                "parallel_s": par,
                "speedup": seq / par,
                "verdict": verdict,
            }
        },
    }


def test_clean_comparison_passes():
    assert perf_gate.compare(_report(), _report(seq=2.0, par=1.0), band=4.0) == []


def test_nondeterministic_fresh_run_fails():
    problems = perf_gate.compare(_report(identical=False), _report(), band=4.0)
    assert any("all_identical" in p for p in problems)


def test_verdict_drift_fails():
    problems = perf_gate.compare(_report(verdict="changed"), _report(), band=4.0)
    assert any("verdict differs" in p for p in problems)


def test_sequential_time_band():
    problems = perf_gate.compare(_report(seq=9.0, par=1.0), _report(seq=2.0), band=4.0)
    assert any("exceeds 4x committed" in p for p in problems)


def test_pool_overhead_band():
    problems = perf_gate.compare(_report(seq=1.0, par=8.0), _report(), band=4.0)
    assert any("pool overhead" in p for p in problems)


def test_pool_startup_grace_covers_tiny_sections():
    # A 0.04s section whose parallel run pays ~0.4s of spawn start-up is
    # fixed cost, not a regression.
    assert perf_gate.compare(_report(seq=0.04, par=0.45), _report(seq=0.04), band=4.0) == []


def test_missing_section_fails():
    fresh = _report()
    fresh["sections"] = {}
    problems = perf_gate.compare(fresh, _report(), band=4.0)
    assert any("lacks sections" in p for p in problems)


# -- the bounded-memory gate over the log_space bench cell -------------------


def _log_space_report(
    peak_on=60_000,
    final_on=50_000,
    final_off=500_000,
    recycled=20,
    rows_on=None,
    rows_off=None,
):
    # 5000 records * 100 B, checkpoint every 512 => ~51.2 KB interval,
    # 16 KiB segments => bound = 51.2 KB + 4 * 16 KiB = ~116 KB.
    appended = 500_000
    return {
        "benchmarks": {
            "log_space": {
                "records": 5000,
                "segment_bytes": 16384,
                "ckpt_every": 512,
                "truncation_on": {
                    "peak_live_bytes": peak_on,
                    "final_live_bytes": final_on,
                    "appended_bytes": appended,
                    "recycled_segments": recycled,
                    "rows": rows_on
                    or [
                        {"records": 1250, "live_bytes": 55_000},
                        {"records": 2500, "live_bytes": 52_000},
                        {"records": 5000, "live_bytes": final_on},
                    ],
                },
                "truncation_off": {
                    "peak_live_bytes": final_off,
                    "final_live_bytes": final_off,
                    "appended_bytes": appended,
                    "recycled_segments": 0,
                    "rows": rows_off
                    or [
                        {"records": 1250, "live_bytes": final_off // 4},
                        {"records": 2500, "live_bytes": final_off // 2},
                        {"records": 5000, "live_bytes": final_off},
                    ],
                },
            }
        }
    }


def test_log_space_gate_passes_on_bounded_run():
    assert perf_gate.gate_log_space(_log_space_report()) == []


def test_log_space_gate_fails_on_unbounded_peak():
    problems = perf_gate.gate_log_space(_log_space_report(peak_on=400_000))
    assert any("checkpoint-interval bound" in p for p in problems)


def test_log_space_gate_fails_on_creeping_final_row():
    rows = [
        {"records": 1250, "live_bytes": 55_000},
        {"records": 2500, "live_bytes": 90_000},
        {"records": 5000, "live_bytes": 200_000},
    ]
    problems = perf_gate.gate_log_space(_log_space_report(rows_on=rows))
    assert any("not holding the log flat" in p for p in problems)


def test_log_space_gate_fails_without_recycling():
    problems = perf_gate.gate_log_space(_log_space_report(recycled=0))
    assert any("no segment was recycled" in p for p in problems)


def test_log_space_gate_fails_on_flat_control():
    rows = [
        {"records": 1250, "live_bytes": 490_000},
        {"records": 2500, "live_bytes": 495_000},
        {"records": 5000, "live_bytes": 500_000},
    ]
    problems = perf_gate.gate_log_space(_log_space_report(rows_off=rows))
    assert any("control did not grow" in p for p in problems)


def test_log_space_gate_requires_the_cell():
    problems = perf_gate.gate_log_space({"benchmarks": {}})
    assert problems == ["log-space: report has no log_space benchmark cell"]


def test_log_space_gate_rejects_too_short_runs():
    report = _log_space_report()
    report["benchmarks"]["log_space"]["records"] = 600
    problems = perf_gate.gate_log_space(report)
    assert any("too short" in p for p in problems)


# -- the tracing cost-contract gate over the trace_overhead cell -------------


def _trace_overhead_report(plain=1.0, traced=1.5, events=5000):
    return {
        "benchmarks": {
            "trace_overhead": {
                "requests": 200,
                "plain_seconds": plain,
                "traced_seconds": traced,
                "overhead_ratio": traced / plain if plain else 0.0,
                "trace_events": events,
            }
        }
    }


def test_trace_overhead_gate_passes_within_ratio():
    assert perf_gate.gate_trace_overhead(_trace_overhead_report(), 5.0) == []


def test_trace_overhead_gate_fails_when_tracing_too_slow():
    problems = perf_gate.gate_trace_overhead(
        _trace_overhead_report(plain=1.0, traced=9.0), 5.0
    )
    assert any("exceeds 5x" in p for p in problems)


def test_trace_overhead_gate_fails_on_dead_instrumentation():
    problems = perf_gate.gate_trace_overhead(
        _trace_overhead_report(events=0), 5.0
    )
    assert any("no events" in p for p in problems)


def test_trace_overhead_gate_fails_on_degenerate_timings():
    problems = perf_gate.gate_trace_overhead(
        _trace_overhead_report(plain=0.0), 5.0
    )
    assert any("degenerate" in p for p in problems)


def test_trace_overhead_gate_requires_the_cell():
    problems = perf_gate.gate_trace_overhead({"benchmarks": {}}, 5.0)
    assert problems == [
        "trace-overhead: report has no trace_overhead benchmark cell"
    ]


def _partition_report(
    speedup=3.2, p1_mbps=100.0, spread=True, with_cells=True
):
    cells = {}
    for P in (1, 2, 4, 8):
        cells[str(P)] = {
            "records_per_s": 100_000.0,
            "mb_per_s": p1_mbps,
            "sim_records_per_s": 1_000.0 * (speedup if P == 4 else max(1, P)),
            "partition_appends": {
                str(i): 10 for i in range(P if spread else 1)
            },
        }
    cell = {
        "records": 8000,
        "speedup_p4_sim": speedup,
        "p1_sim_records_per_s": 1_000.0,
        "p4_sim_records_per_s": 1_000.0 * speedup,
    }
    if with_cells:
        cell["cells"] = cells
    return {"benchmarks": {"log_partitions": cell}}


def _append_baseline(mb_per_s=21.0):
    return {"benchmarks": {"append_flush": {"mb_per_s": mb_per_s}}}


def test_partition_scaling_gate_passes():
    problems = perf_gate.gate_partition_scaling(
        _partition_report(), _append_baseline(), band=4.0, min_speedup=1.8
    )
    assert problems == []


def test_partition_scaling_gate_fails_below_speedup_floor():
    problems = perf_gate.gate_partition_scaling(
        _partition_report(speedup=1.3), None, band=4.0, min_speedup=1.8
    )
    assert any("below the 1.8x floor" in p for p in problems)


def test_partition_scaling_gate_fails_on_slowed_single_log_path():
    problems = perf_gate.gate_partition_scaling(
        _partition_report(p1_mbps=2.0),
        _append_baseline(mb_per_s=21.0),
        band=4.0,
        min_speedup=1.8,
    )
    assert any("slowed the classical single-log path" in p for p in problems)


def test_partition_scaling_gate_fails_when_streams_do_not_spread():
    problems = perf_gate.gate_partition_scaling(
        _partition_report(spread=False), None, band=4.0, min_speedup=1.8
    )
    assert any("did not spread" in p for p in problems)


def test_partition_scaling_gate_requires_all_cells():
    problems = perf_gate.gate_partition_scaling(
        _partition_report(with_cells=False), None, band=4.0, min_speedup=1.8
    )
    assert any("cells missing" in p for p in problems)


# -- the lazy-restart TTFR gate over the instant_restart cell ----------------


def _restart_run(mode, P, sessions, ttfr, **overrides):
    run = {
        "mode": mode,
        "partitions": P,
        "sessions": sessions,
        "ttfr_ms": ttfr,
        "full_recovery_ms": ttfr * 10,
        "lazy_recoveries": sessions if mode == "lazy" else 0,
        "inline_recoveries": 1 if mode == "lazy" else 0,
        "pump_recoveries": sessions - 1 if mode == "lazy" else 0,
        "served_before_recovery": 0,
    }
    run.update(overrides)
    return run


def _instant_restart_report(
    sessions=12_000, eager_ttfr=50_000.0, lazy_ttfr=500.0, **run_overrides
):
    modes = {
        f"{mode}_p{P}": _restart_run(
            mode,
            P,
            sessions,
            eager_ttfr if mode == "eager" else lazy_ttfr,
            **(run_overrides if mode == "lazy" else {}),
        )
        for P in (1, 4)
        for mode in ("eager", "lazy")
    }
    return {
        "benchmarks": {
            "instant_restart": {
                "sessions": sessions,
                "ttfr_eager_p1_ms": eager_ttfr,
                "ttfr_lazy_p1_ms": lazy_ttfr,
                "ttfr_eager_p4_ms": eager_ttfr,
                "ttfr_lazy_p4_ms": lazy_ttfr,
                "ttfr_speedup_p1": eager_ttfr / lazy_ttfr,
                "ttfr_speedup_p4": eager_ttfr / lazy_ttfr,
                "modes": modes,
            }
        }
    }


def test_instant_restart_gate_passes():
    report = _instant_restart_report()
    assert perf_gate.gate_instant_restart(report, 0.2, 10_000) == []


def test_instant_restart_gate_fails_above_ttfr_ratio():
    report = _instant_restart_report(eager_ttfr=1000.0, lazy_ttfr=900.0)
    problems = perf_gate.gate_instant_restart(report, 0.2, 10_000)
    assert any("exceeds 0.2x eager" in p for p in problems)


def test_instant_restart_gate_fails_on_too_few_sessions():
    report = _instant_restart_report(sessions=500)
    problems = perf_gate.gate_instant_restart(report, 0.2, 10_000)
    assert any("only 500 sessions" in p for p in problems)


def test_instant_restart_gate_fails_on_served_before_recovery():
    report = _instant_restart_report(served_before_recovery=3)
    problems = perf_gate.gate_instant_restart(report, 0.2, 10_000)
    assert any("before the session chain was replayed" in p for p in problems)


def test_instant_restart_gate_fails_on_undrained_pump():
    report = _instant_restart_report(lazy_recoveries=7)
    problems = perf_gate.gate_instant_restart(report, 0.2, 10_000)
    assert any("did not drain" in p for p in problems)
    assert any("inline+pump" in p for p in problems)


def test_instant_restart_gate_fails_on_lazy_leak_into_eager():
    report = _instant_restart_report()
    cell = report["benchmarks"]["instant_restart"]
    cell["modes"]["eager_p1"]["lazy_recoveries"] = 2
    problems = perf_gate.gate_instant_restart(report, 0.2, 10_000)
    assert any("mode plumbing leaked" in p for p in problems)


def test_instant_restart_gate_fails_on_degenerate_ttfr():
    report = _instant_restart_report(eager_ttfr=0.0)
    problems = perf_gate.gate_instant_restart(report, 0.2, 10_000)
    assert any("degenerate TTFR" in p for p in problems)


def test_instant_restart_gate_requires_the_cell():
    problems = perf_gate.gate_instant_restart({"benchmarks": {}}, 0.2, 10_000)
    assert problems == [
        "instant-restart: report has no instant_restart benchmark cell"
    ]
