"""Tests for the CI perf-regression gate's comparison logic."""

import importlib.util
import pathlib

_spec = importlib.util.spec_from_file_location(
    "perf_gate",
    pathlib.Path(__file__).resolve().parents[2] / "scripts" / "perf_gate.py",
)
perf_gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(perf_gate)


def _report(seq=1.0, par=0.5, verdict="v", identical=True):
    return {
        "all_identical": identical,
        "sections": {
            "fuzz_exhaustive": {
                "sequential_s": seq,
                "parallel_s": par,
                "speedup": seq / par,
                "verdict": verdict,
            }
        },
    }


def test_clean_comparison_passes():
    assert perf_gate.compare(_report(), _report(seq=2.0, par=1.0), band=4.0) == []


def test_nondeterministic_fresh_run_fails():
    problems = perf_gate.compare(_report(identical=False), _report(), band=4.0)
    assert any("all_identical" in p for p in problems)


def test_verdict_drift_fails():
    problems = perf_gate.compare(_report(verdict="changed"), _report(), band=4.0)
    assert any("verdict differs" in p for p in problems)


def test_sequential_time_band():
    problems = perf_gate.compare(_report(seq=9.0, par=1.0), _report(seq=2.0), band=4.0)
    assert any("exceeds 4x committed" in p for p in problems)


def test_pool_overhead_band():
    problems = perf_gate.compare(_report(seq=1.0, par=8.0), _report(), band=4.0)
    assert any("pool overhead" in p for p in problems)


def test_pool_startup_grace_covers_tiny_sections():
    # A 0.04s section whose parallel run pays ~0.4s of spawn start-up is
    # fixed cost, not a regression.
    assert perf_gate.compare(_report(seq=0.04, par=0.45), _report(seq=0.04), band=4.0) == []


def test_missing_section_fails():
    fresh = _report()
    fresh["sections"] = {}
    problems = perf_gate.compare(fresh, _report(), band=4.0)
    assert any("lacks sections" in p for p in problems)
