"""The experiment sweeps: parallel points must reproduce sequential
numbers exactly, and a failed point must abort with its key."""

import pytest

from repro.harness.experiments import _sweep
from repro.parallel import WorkerFailure
from repro.parallel.tasks import WorkloadPointSpec
from repro.workloads import WorkloadParams


def _points(n=3, **kwargs):
    return [
        WorkloadPointSpec(
            key=("test", i),
            params=WorkloadParams(requests_per_client=20, seed=i),
            **kwargs,
        )
        for i in range(n)
    ]


def test_sweep_parity_and_order():
    seq = _sweep(_points(), jobs=1)
    par = _sweep(_points(), jobs=2)
    assert len(seq) == 3
    assert [r.completed_requests for r in seq] == [
        r.completed_requests for r in par
    ]
    assert [r.mean_response_ms for r in seq] == [r.mean_response_ms for r in par]
    # Distinct seeds give distinct runs — order actually matters here.
    assert seq[0].mean_response_ms != seq[1].mean_response_ms


def test_sweep_progress_reports_keys():
    seen = []
    _sweep(_points(2), jobs=1, progress=lambda done, total, key: seen.append(key))
    assert seen == [("test", 0), ("test", 1)]


def test_failed_point_aborts_with_key():
    # Two concurrent clients with the paper's non-atomic shared-variable
    # accesses lose counter updates across crashes, so the worker's
    # exactly-once verification raises — the sweep must abort with the
    # failing point's key, not return partial rows.
    bad = [
        WorkloadPointSpec(
            key=("test", "bad"),
            params=WorkloadParams(
                num_clients=2, requests_per_client=8, crash_every_n=6
            ),
            verify_exactly_once=True,
        ),
        WorkloadPointSpec(
            key=("test", "ok"),
            params=WorkloadParams(requests_per_client=10),
        ),
    ]
    with pytest.raises(WorkerFailure, match=r"\('test', 'bad'\)"):
        _sweep(bad, jobs=2)


def test_experiment_jobs_kwarg_is_uniform():
    # Every registered experiment accepts jobs/progress, so the CLI can
    # dispatch uniformly.
    import inspect

    from repro.__main__ import EXPERIMENTS

    for name, fn in EXPERIMENTS.items():
        parameters = inspect.signature(fn).parameters
        assert "jobs" in parameters and "progress" in parameters, name
