"""Regression tests for the experiment-report renderer.

Two historical bugs:

- ``render_result`` derived table columns from ``rows[0]`` only, so
  heterogeneous rows (scenario cells that add measurements) silently
  lost cells;
- ``_format_value`` switched ``.3f`` -> ``.1f`` per value at
  ``abs >= 100``, mixing precisions within one column.
"""

from repro.harness.experiments import ExperimentResult
from repro.harness.report import (
    _column_float_format,
    _format_value,
    render_result,
    render_table,
    table_columns,
)


def result_with(rows):
    return ExperimentResult(experiment="t", description="d", rows=rows)


class TestColumnUnion:
    def test_columns_are_ordered_union_across_rows(self):
        rows = [
            {"a": 1, "b": 2},
            {"a": 3, "c": 4},
            {"d": 5, "a": 6},
        ]
        assert table_columns(rows) == ["a", "b", "c", "d"]

    def test_rows_that_add_keys_are_not_dropped(self):
        # Pre-fix: the header came from rows[0] only, so "failover_ms"
        # never appeared and the second row's cell was lost.
        rows = [
            {"cell": "crash", "ok": True},
            {"cell": "standby", "ok": True, "failover_ms": 12.5},
        ]
        text = render_result(result_with(rows))
        assert "failover_ms" in text
        assert "12.5" in text

    def test_missing_cells_render_as_dash(self):
        rows = [{"a": 1.0}, {"a": 2.0, "b": 3.0}]
        text = render_result(result_with(rows))
        # Row one has no "b": its cell renders as the None marker.
        row_lines = text.splitlines()[3:]
        assert any("-" in line for line in row_lines)

    def test_empty_rows_render_header_only(self):
        text = render_result(result_with([]))
        assert text == "== t: d =="

    def test_render_table_empty(self):
        assert render_table([]) == []


class TestConsistentFloatFormat:
    def test_column_with_large_value_uses_one_precision_everywhere(self):
        # Pre-fix: 3.5 rendered "3.500" while 250.0 rendered "250.0" in
        # the same column.
        rows = [{"ms": 3.5}, {"ms": 250.0}]
        text = render_result(result_with(rows))
        assert "3.5" in text
        assert "3.500" not in text
        assert "250.0" in text

    def test_small_only_column_keeps_three_decimals(self):
        rows = [{"ms": 3.5}, {"ms": 99.25}]
        text = render_result(result_with(rows))
        assert "3.500" in text
        assert "99.250" in text

    def test_negative_values_count_toward_magnitude(self):
        assert _column_float_format([-250.0, 1.0]) == ".1f"
        assert _column_float_format([-99.0, 1.0]) == ".3f"

    def test_none_and_non_floats_are_ignored_for_format_choice(self):
        assert _column_float_format([None, "x", 1000, 2.0]) == ".3f"

    def test_mixed_column_renders_consistently_with_none(self):
        rows = [{"v": None}, {"v": -123.456}, {"v": 0.5}]
        lines = render_table(rows)
        assert lines[2].strip() == "-"
        assert "-123.5" in lines[3]
        assert "0.5" in lines[4]
        assert "0.500" not in lines[4]

    def test_format_value_defaults(self):
        assert _format_value(True) == "yes"
        assert _format_value(False) == "no"
        assert _format_value(None) == "-"
        assert _format_value(1.5) == "1.500"
        assert _format_value(1.5, ".1f") == "1.5"
        assert _format_value("s") == "s"
        assert _format_value(7) == "7"
