"""Tests for the experiment harness: metrics, results, rendering."""

import pytest

from repro.harness import ExperimentResult, ResponseStats, render_result
from repro.harness.experiments import fig14_response_table


def test_response_stats_empty():
    stats = ResponseStats.from_samples([])
    assert stats.count == 0
    assert stats.mean == 0.0


def test_response_stats_basic():
    stats = ResponseStats.from_samples([1.0, 2.0, 3.0, 4.0])
    assert stats.count == 4
    assert stats.mean == pytest.approx(2.5)
    assert stats.median == 2.0
    assert stats.maximum == 4.0
    assert stats.minimum == 1.0


def test_response_stats_percentiles():
    samples = list(range(1, 101))
    stats = ResponseStats.from_samples([float(v) for v in samples])
    assert stats.p95 == 95.0
    assert stats.p99 == 99.0


def test_experiment_result_claims():
    result = ExperimentResult(experiment="x", description="d")
    result.claim("good", True)
    result.claim("bad", False)
    assert not result.all_claims_hold
    result2 = ExperimentResult(experiment="y", description="d")
    result2.claim("good", True)
    assert result2.all_claims_hold


def test_experiment_result_row_by():
    result = ExperimentResult(experiment="x", description="d")
    result.rows.append({"k": "a", "v": 1})
    result.rows.append({"k": "b", "v": 2})
    assert result.row_by("k", "b")["v"] == 2
    with pytest.raises(KeyError):
        result.row_by("k", "zzz")


def test_render_includes_rows_paper_and_claims():
    result = ExperimentResult(
        experiment="demo", description="demo table", paper={"ref": 42}
    )
    result.rows.append({"name": "row1", "value": 3.14159})
    result.claim("something holds", True)
    result.claim("something fails", False)
    text = render_result(result)
    assert "demo table" in text
    assert "row1" in text
    assert "3.142" in text
    assert "ref: 42" in text
    assert "[PASS] something holds" in text
    assert "[FAIL] something fails" in text


def test_fig14_tiny_scale_structure():
    """The experiment functions produce well-formed results even at a
    tiny scale (claims may be noisy there, structure must hold)."""
    result = fig14_response_table(scale=0.003)
    assert len(result.rows) == 5
    assert {row["configuration"] for row in result.rows} == {
        "LoOptimistic", "Pessimistic", "NoLog", "Psession", "StateServer"
    }
    for row in result.rows:
        assert row["mean_response_ms"] > 0
        assert row["paper_ms"] > 0
    assert len(result.claims) == 2
