"""Tests for the mini WAL'd key-value store (Psession substrate)."""

import random

import pytest

from repro.db import KVStore, TransactionError
from repro.sim import Simulator
from repro.storage import Disk


def make_store(seed=0):
    sim = Simulator()
    disk = Disk(sim, rng=random.Random(seed))
    return sim, KVStore(sim, disk)


def test_write_read_commit():
    sim, kv = make_store()

    def run():
        txn = kv.begin()
        yield from txn.write("a", b"1")
        yield from txn.commit()
        txn2 = kv.begin()
        value = yield from txn2.read("a")
        yield from txn2.commit()
        return value

    assert sim.run_process(run()) == b"1"


def test_read_own_writes():
    sim, kv = make_store()

    def run():
        txn = kv.begin()
        yield from txn.write("a", b"x")
        value = yield from txn.read("a")
        yield from txn.abort()
        return value

    assert sim.run_process(run()) == b"x"
    assert kv.get_committed("a") is None


def test_abort_discards_writes():
    sim, kv = make_store()

    def run():
        txn = kv.begin()
        yield from txn.write("a", b"1")
        yield from txn.abort()

    sim.run_process(run())
    assert kv.get_committed("a") is None
    assert kv.stats_aborts == 1


def test_commit_forces_wal():
    sim, kv = make_store()

    def run():
        txn = kv.begin()
        yield from txn.write("a", b"1")
        yield from txn.commit()

    sim.run_process(run())
    assert kv.stats_log_forces == 1
    assert kv.disk.stats.writes == 1
    assert kv.wal.durable_end > 0
    assert kv.wal.unflushed_bytes == 0


def test_read_only_commit_is_free():
    sim, kv = make_store()

    def run():
        txn = kv.begin()
        yield from txn.read("nope")
        yield from txn.commit()

    sim.run_process(run())
    assert kv.stats_log_forces == 0
    assert kv.disk.stats.writes == 0


def test_use_after_commit_rejected():
    sim, kv = make_store()

    def run():
        txn = kv.begin()
        yield from txn.commit()
        with pytest.raises(TransactionError):
            yield from txn.read("a")

    sim.run_process(run())


def test_crash_recovery_replays_committed_only():
    sim, kv = make_store()

    def run():
        t1 = kv.begin()
        yield from t1.write("committed", b"yes")
        yield from t1.commit()
        t2 = kv.begin()
        yield from t2.write("in-flight", b"no")
        # t2 never commits; crash now.

    sim.run_process(run())
    kv.crash()

    def recover():
        yield from kv.recover()

    sim.run_process(recover())
    assert kv.get_committed("committed") == b"yes"
    assert kv.get_committed("in-flight") is None


def test_recovery_applies_transactions_in_order():
    sim, kv = make_store()

    def run():
        for i in range(5):
            txn = kv.begin()
            yield from txn.write("k", str(i).encode())
            yield from txn.commit()

    sim.run_process(run())
    kv.crash()
    sim.run_process(kv.recover())
    assert kv.get_committed("k") == b"4"


def test_locks_serialize_writers():
    sim, kv = make_store()
    order = []

    def writer(name, delay):
        yield delay
        txn = kv.begin()
        yield from txn.write("k", name.encode())
        order.append((name, "locked"))
        yield 5.0  # hold the lock a while
        yield from txn.commit()
        order.append((name, "committed"))

    sim.spawn(writer("a", 0.0))
    sim.spawn(writer("b", 0.5))
    sim.run()
    assert order[0] == ("a", "locked")
    assert ("a", "committed") in order
    a_commit = order.index(("a", "committed"))
    b_lock = order.index(("b", "locked"))
    assert b_lock > a_commit
    assert kv.get_committed("k") == b"b"


def test_lock_released_on_abort():
    sim, kv = make_store()

    def run():
        t1 = kv.begin()
        yield from t1.write("k", b"1")
        yield from t1.abort()
        t2 = kv.begin()
        yield from t2.write("k", b"2")
        yield from t2.commit()

    sim.run_process(run())
    assert kv.get_committed("k") == b"2"


def test_write_txn_costs_more_than_read_txn():
    """The Psession asymmetry: write transactions pay a log force."""
    sim, kv = make_store()
    times = {}

    def run():
        start = sim.now
        txn = kv.begin()
        yield from txn.read("k")
        yield from txn.commit()
        times["read"] = sim.now - start
        start = sim.now
        txn = kv.begin()
        yield from txn.write("k", b"v" * 512)
        yield from txn.commit()
        times["write"] = sim.now - start

    sim.run_process(run())
    assert times["write"] > times["read"] + 3.0  # the log force


def test_many_sessions_roundtrip():
    sim, kv = make_store()

    def run():
        for i in range(50):
            txn = kv.begin()
            yield from txn.write(f"s{i}", bytes([i]))
            yield from txn.commit()

    sim.run_process(run())
    kv.crash()
    sim.run_process(kv.recover())
    for i in range(50):
        assert kv.get_committed(f"s{i}") == bytes([i])
