"""Tests for the commercial baselines: Psession and StateServer."""

import pytest

from repro.baselines import PsessionServer, StateServerNode, StateServerServer
from repro.baselines.psession import decode_variables, encode_variables
from repro.core import ServiceDomainConfig
from repro.core.client import EndClient
from repro.net import Network
from repro.sim import RngRegistry, Simulator


def counter_method(ctx, argument):
    yield from ctx.compute(0.2)
    raw = yield from ctx.get_session_var("count")
    count = int.from_bytes(raw or b"\x00", "big") + 1
    yield from ctx.set_session_var("count", count.to_bytes(4, "big"))
    return count.to_bytes(4, "big")


def test_variables_codec_roundtrip():
    variables = {"a": b"\x00" * 100, "z": b"xyz", "": b""}
    assert decode_variables(encode_variables(variables)) == variables


def build_psession(seed=0):
    sim = Simulator()
    rng = RngRegistry(seed)
    net = Network(sim, rng=rng)
    msp = PsessionServer(sim, net, "server", ServiceDomainConfig(), rng=rng)
    msp.register_service("counter", counter_method)
    client = EndClient(sim, net, "client")
    return sim, msp, client


def run_calls(sim, msp, client, session, n):
    results = []

    def driver():
        yield 1.0
        for _ in range(n):
            result = yield from session.call("counter", b"")
            results.append(int.from_bytes(result.payload, "big"))

    p = sim.spawn(driver())
    sim.run_until_process(p, limit=600_000)
    return results


def test_psession_basic_counting():
    sim, msp, client = build_psession()
    msp.start_process()
    session = client.open_session("server")
    results = run_calls(sim, msp, client, session, 5)
    assert results == [1, 2, 3, 4, 5]
    # Two DB transactions per request: one read, one write commit.
    assert msp.db.stats_commits == 10
    assert msp.db.stats_log_forces == 5


def test_psession_recovers_session_state_from_db():
    """The baseline's selling point: session state survives a crash
    because it lives in the DBMS."""
    sim, msp, client = build_psession()
    msp.start_process()
    session = client.open_session("server")
    results = run_calls(sim, msp, client, session, 3)
    assert results == [1, 2, 3]

    msp.crash()
    msp.restart_process()
    results = run_calls(sim, msp, client, session, 2)
    # The counter continues from the persisted state.
    assert results == [4, 5]


def test_psession_logs_nothing():
    sim, msp, client = build_psession()
    msp.start_process()
    session = client.open_session("server")
    run_calls(sim, msp, client, session, 3)
    assert msp.store.end == 0  # no recovery log; only the DB WAL
    assert msp.db.wal.durable_end > 0


def build_stateserver(seed=0):
    sim = Simulator()
    rng = RngRegistry(seed)
    net = Network(sim, rng=rng)
    state_server = StateServerNode(sim, net)
    state_server.start()
    msp = StateServerServer(sim, net, "server", ServiceDomainConfig(), rng=rng)
    msp.register_service("counter", counter_method)
    client = EndClient(sim, net, "client")
    return sim, msp, state_server, client


def test_stateserver_basic_counting():
    sim, msp, state_server, client = build_stateserver()
    msp.start_process()
    session = client.open_session("server")
    results = run_calls(sim, msp, client, session, 5)
    assert results == [1, 2, 3, 4, 5]
    assert session.id in state_server._states


def test_stateserver_survives_msp_crash():
    """Session state lives at the state server, so an MSP crash does
    not lose it."""
    sim, msp, state_server, client = build_stateserver()
    msp.start_process()
    session = client.open_session("server")
    assert run_calls(sim, msp, client, session, 3) == [1, 2, 3]
    msp.crash()
    msp.restart_process()
    assert run_calls(sim, msp, client, session, 2) == [4, 5]


def test_stateserver_crash_loses_everything():
    """The baseline's weakness the paper points out: the state server
    itself is not persistent."""
    sim, msp, state_server, client = build_stateserver()
    msp.start_process()
    session = client.open_session("server")
    assert run_calls(sim, msp, client, session, 3) == [1, 2, 3]
    state_server.crash()
    state_server.start()
    msp.crash()  # MSP must also lose its in-memory copy
    msp.restart_process()
    results = run_calls(sim, msp, client, session, 1)
    # The counter restarted from scratch: state was lost.
    assert results == [1]


def test_stateserver_faster_than_psession():
    sim_p, msp_p, client_p = build_psession()
    msp_p.start_process()
    run_calls(sim_p, msp_p, client_p, client_p.open_session("server"), 20)
    sim_s, msp_s, _ss, client_s = build_stateserver()
    msp_s.start_process()
    run_calls(sim_s, msp_s, client_s, client_s.open_session("server"), 20)
    assert client_s.stats.mean_response_ms < client_p.stats.mean_response_ms
