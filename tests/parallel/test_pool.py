"""Tests for the deterministic process-pool dispatch (DESIGN.md §11).

Workers here are module-level so spawn children can import them; the
slow cases (worker death, hang deadline) each pay real pool start-up
and are kept to two specs.
"""

import os
import pickle
import time

import pytest

from repro.parallel import WorkerFailure, resolve_jobs, run_tasks
from repro.parallel.pool import JOBS_ENV_VAR


def _square(spec):
    return spec * spec


def _mixed(spec):
    if spec == "boom":
        raise ValueError("synthetic failure")
    return spec


def _die(spec):
    if spec == "die":
        # Give siblings time to return their results before the pool
        # breaks, so only the dying task is reported as lost.
        time.sleep(0.5)
        os._exit(13)
    return spec


def _sleep(spec):
    time.sleep(spec)
    return spec


# -- resolve_jobs -----------------------------------------------------------


def test_resolve_jobs_explicit_wins(monkeypatch):
    monkeypatch.setenv(JOBS_ENV_VAR, "5")
    assert resolve_jobs(2) == 2


def test_resolve_jobs_env(monkeypatch):
    monkeypatch.setenv(JOBS_ENV_VAR, "5")
    assert resolve_jobs() == 5


def test_resolve_jobs_bad_env(monkeypatch):
    monkeypatch.setenv(JOBS_ENV_VAR, "lots")
    with pytest.raises(ValueError):
        resolve_jobs()


def test_resolve_jobs_auto_detect(monkeypatch):
    monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
    auto = resolve_jobs()
    assert auto >= 1
    assert resolve_jobs(0) == auto  # <= 0 means auto, like None
    assert resolve_jobs(-3) == auto


# -- the jobs=1 reference path ----------------------------------------------


def test_sequential_order_errors_and_progress():
    calls = []
    outcomes = run_tasks(
        _mixed,
        [1, "boom", 3],
        jobs=1,
        progress=lambda done, total, o: calls.append((done, total, o.index)),
    )
    assert [o.index for o in outcomes] == [0, 1, 2]
    assert outcomes[0].ok and outcomes[0].result == 1
    assert not outcomes[1].ok and "ValueError" in outcomes[1].error
    assert outcomes[1].spec == "boom"  # failed spec kept for replay
    assert outcomes[2].ok and outcomes[2].result == 3
    assert calls == [(1, 3, 0), (2, 3, 1), (3, 3, 2)]


def test_unwrap():
    ok, bad = run_tasks(_mixed, [4, "boom"], jobs=1)
    assert ok.unwrap() == 4
    with pytest.raises(WorkerFailure):
        bad.unwrap()


def test_single_spec_stays_in_process():
    (outcome,) = run_tasks(_square, [7], jobs=8)
    assert outcome.unwrap() == 49


# -- the spawn-pool path ----------------------------------------------------


def test_parallel_results_merge_in_spec_order():
    outcomes = run_tasks(_square, list(range(6)), jobs=2)
    assert [o.unwrap() for o in outcomes] == [0, 1, 4, 9, 16, 25]
    assert [o.index for o in outcomes] == list(range(6))


def test_parallel_worker_exception_is_captured():
    outcomes = run_tasks(_mixed, [1, "boom", 3], jobs=2)
    assert outcomes[0].unwrap() == 1
    assert not outcomes[1].ok and "ValueError" in outcomes[1].error
    assert outcomes[2].unwrap() == 3


def test_dead_worker_fails_its_task_with_spec():
    outcomes = run_tasks(_die, ["survivor", "die"], jobs=2)
    assert len(outcomes) == 2 and all(o is not None for o in outcomes)
    dead = outcomes[1]
    assert dead.spec == "die"  # replayable spec survives the pool break
    assert not dead.ok and "died" in dead.error
    # The sibling either finished before the break or was retried; it is
    # never silently dropped.
    assert outcomes[0].ok or "died" in outcomes[0].error


def test_hung_pool_fails_unfinished_tasks():
    outcomes = run_tasks(_sleep, [0.0, 60.0], jobs=2, task_timeout_s=4.0)
    assert outcomes[0].unwrap() == 0.0
    assert not outcomes[1].ok and "hung" in outcomes[1].error
    assert outcomes[1].spec == 60.0


# -- task specs -------------------------------------------------------------


def test_task_specs_are_picklable():
    from repro.fuzz.explorer import FuzzParams
    from repro.parallel.tasks import (
        BenchCellSpec,
        FuzzTaskSpec,
        WorkloadPointSpec,
    )
    from repro.workloads import WorkloadParams

    specs = [
        FuzzTaskSpec(
            schedule={"target": "msp1", "kills": [3], "seed": 0},
            params=FuzzParams(),
        ),
        BenchCellSpec("scan", scale=0.5, repeat=2),
        WorkloadPointSpec(key=("fig", 1), params=WorkloadParams(seed=1)),
    ]
    for spec in specs:
        assert pickle.loads(pickle.dumps(spec)) == spec
