"""Tests for the shared progress/ETA reporter (fake clock, StringIO)."""

import io

from repro.parallel import ProgressReporter


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def make_reporter(min_interval_s=1.0):
    stream = io.StringIO()
    clock = FakeClock()
    reporter = ProgressReporter(
        "sweep", min_interval_s=min_interval_s, stream=stream, clock=clock
    ).start()
    return reporter, stream, clock


def test_first_and_last_updates_always_print():
    reporter, stream, clock = make_reporter()
    reporter.update(1, 4)
    clock.t = 0.1  # within the rate limit
    reporter.update(2, 4)
    reporter.update(3, 4)
    clock.t = 0.2
    reporter.update(4, 4)  # done == total forces a line
    lines = stream.getvalue().splitlines()
    assert len(lines) == 2
    assert "[1/4]" in lines[0] and " 25.0%" in lines[0]
    assert "[4/4]" in lines[1] and "100.0%" in lines[1]


def test_rate_limit_releases_after_interval():
    reporter, stream, clock = make_reporter(min_interval_s=1.0)
    reporter.update(1, 10)
    clock.t = 0.5
    reporter.update(2, 10)  # suppressed
    clock.t = 1.5
    reporter.update(3, 10)  # due again
    lines = stream.getvalue().splitlines()
    assert len(lines) == 2
    assert "[ 3/10]" in lines[1]


def test_detail_forces_a_line():
    reporter, stream, clock = make_reporter()
    reporter.update(1, 100)
    clock.t = 0.01
    reporter.update(2, 100, detail="FAIL {'target': 'msp1'}")
    lines = stream.getvalue().splitlines()
    assert len(lines) == 2
    assert lines[1].endswith("FAIL {'target': 'msp1'}")


def test_rate_and_eta():
    reporter, stream, clock = make_reporter()
    clock.t = 2.0  # 2s after start: 10 done -> 5.0/s, 90 left -> 18s
    reporter.update(10, 100)
    line = stream.getvalue().splitlines()[0]
    assert "5.0/s" in line
    assert "ETA 0:18" in line


def test_finish_reports_elapsed():
    reporter, stream, clock = make_reporter()
    clock.t = 3.25
    elapsed = reporter.finish("done")
    assert elapsed == 3.25
    assert "done (3.2s)" in stream.getvalue() or "done (3.3s)" in stream.getvalue()
