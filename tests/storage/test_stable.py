"""Tests for the crash-aware stable store."""

import pytest

from repro.storage import StableStore
from repro.storage.stable import StableStoreError


def test_append_returns_offsets():
    store = StableStore()
    assert store.append(b"abc") == 0
    assert store.append(b"defg") == 3
    assert store.end == 7


def test_read_back_volatile():
    store = StableStore()
    store.append(b"hello")
    assert store.read(0, 5) == b"hello"
    assert store.read(1, 3) == b"ell"


def test_durable_boundary_monotone():
    store = StableStore()
    store.append(b"0123456789")
    store.mark_durable(5)
    store.mark_durable(3)  # no-op, must not regress
    assert store.durable_end == 5
    assert store.unflushed_bytes == 5


def test_mark_durable_past_end_rejected():
    store = StableStore()
    store.append(b"ab")
    with pytest.raises(StableStoreError):
        store.mark_durable(3)


def test_crash_discards_volatile_tail():
    store = StableStore()
    store.append(b"durable|")
    store.mark_durable(store.end)
    store.append(b"volatile")
    store.crash()
    assert store.end == 8
    assert store.read(0, 8) == b"durable|"
    assert store.crash_count == 1


def test_crash_preserves_durable_prefix_exactly():
    store = StableStore()
    for i in range(100):
        store.append(bytes([i]))
    store.mark_durable(42)
    store.crash()
    assert store.end == 42
    assert store.read(0, 42) == bytes(range(42))


def test_read_durable_enforces_boundary():
    store = StableStore()
    store.append(b"0123456789")
    store.mark_durable(4)
    assert store.read_durable(0, 4) == b"0123"
    with pytest.raises(StableStoreError):
        store.read_durable(0, 5)


def test_read_out_of_range():
    store = StableStore()
    store.append(b"ab")
    with pytest.raises(StableStoreError):
        store.read(0, 3)
    with pytest.raises(StableStoreError):
        store.read(-1, 1)


def test_anchor_survives_only_if_flushed():
    store = StableStore()
    store.write_anchor(b"anchor-v1")
    assert store.read_anchor() is None
    store.flush_anchor()
    assert store.read_anchor() == b"anchor-v1"
    store.write_anchor(b"anchor-v2")
    store.crash()
    assert store.read_anchor() == b"anchor-v1"


def test_append_after_crash_continues_from_durable_end():
    store = StableStore()
    store.append(b"aaaa")
    store.mark_durable(4)
    store.append(b"bbbb")
    store.crash()
    offset = store.append(b"cccc")
    assert offset == 4
    assert store.read(0, 8) == b"aaaacccc"
