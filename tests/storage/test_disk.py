"""Tests for the disk timing model against the paper's own numbers."""

import random

import pytest

from repro.sim import Simulator
from repro.storage import Disk, DiskModel


def test_rotation_time_matches_7200rpm():
    model = DiskModel()
    assert model.rotation_ms == pytest.approx(60000 / 7200)
    assert model.avg_rotational_latency_ms == pytest.approx(60000 / 7200 / 2)


def test_paper_tf2_formula():
    """Paper §5.2: TF2 without seek ~= 4.5 ms."""
    model = DiskModel()
    base = model.write_time_ms(2, with_random_seek=False)
    expected = 60000 / 7200 / 2 + 2 / 63 * 60000 / 7200 + 2 / 63 * 1.2
    assert base == pytest.approx(expected)
    assert 4.3 < base < 4.7


def test_paper_tf2_expected_estimate():
    """Paper §5.2 crudely estimates TF2 = 8 ms (= 4.5 + 10.5/3)."""
    model = DiskModel()
    assert model.expected_write_time_ms(2) == pytest.approx(
        model.write_time_ms(2, with_random_seek=False) + 10.5 / 3
    )
    assert 7.5 < model.expected_write_time_ms(2) < 8.5


def test_paper_recovery_read_formula():
    """Paper §5.4: 1 MB of 64 KB reads takes ~370 ms."""
    model = DiskModel()
    per_read = model.read_time_ms(128, sequential=True)
    expected = 60000 / 7200 / 2 + 128 / 63 * 60000 / 7200 + 128 / 63 * 1
    assert per_read == pytest.approx(expected)
    total_1mb = per_read * (1024 * 1024 / (64 * 1024))
    assert total_1mb == pytest.approx(370, abs=5)


def test_disk_serializes_concurrent_writes():
    sim = Simulator()
    disk = Disk(sim, rng=random.Random(1))
    finish_times = []

    def writer():
        yield from disk.write(2)
        finish_times.append(sim.now)

    sim.spawn(writer())
    sim.spawn(writer())
    sim.run()
    assert len(finish_times) == 2
    assert finish_times[1] > finish_times[0]
    # Second write starts only after the first completes.
    assert finish_times[1] >= 2 * DiskModel().write_time_ms(2, with_random_seek=False)


def test_disk_write_mean_converges_to_expected():
    sim = Simulator()
    disk = Disk(sim, rng=random.Random(42))

    def many_writes():
        for _ in range(600):
            yield from disk.write(2)

    sim.run_process(many_writes())
    mean = sim.now / 600
    assert mean == pytest.approx(DiskModel().expected_write_time_ms(2), rel=0.1)


def test_write_bytes_rounds_to_sectors():
    sim = Simulator()
    disk = Disk(sim, rng=random.Random(7))

    def one():
        yield from disk.write_bytes(513)

    sim.run_process(one())
    assert disk.stats.sectors_written == 2


def test_read_does_not_interfere():
    model = DiskModel()
    assert model.read_time_ms(128, sequential=True) < model.read_time_ms(128, sequential=False)


def test_invalid_sector_counts():
    sim = Simulator()
    disk = Disk(sim)
    with pytest.raises(ValueError):
        next(disk.write(0))
    with pytest.raises(ValueError):
        next(disk.read(-1))


def test_stats_accumulate():
    sim = Simulator()
    disk = Disk(sim, rng=random.Random(5))

    def ops():
        yield from disk.write(3)
        yield from disk.read(128)

    sim.run_process(ops())
    assert disk.stats.writes == 1
    assert disk.stats.reads == 1
    assert disk.stats.sectors_written == 3
    assert disk.stats.sectors_read == 128
    assert disk.stats.busy_ms > 0
