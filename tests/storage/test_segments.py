"""Tests for the segmented store layout and checkpoint-driven truncation."""

import pytest

from repro.storage import LogTruncatedError, StableStore
from repro.storage.stable import StableStoreError


def make(segment_bytes=16):
    return StableStore(segment_bytes=segment_bytes)


def test_appends_span_segment_boundaries():
    store = make(segment_bytes=16)
    store.append(b"a" * 10)
    store.append(b"b" * 10)  # straddles the first boundary at 16
    store.append(b"c" * 20)  # spans two more boundaries
    assert store.end == 40
    assert store.segment_count == 3
    assert store.read(0, 40) == b"a" * 10 + b"b" * 10 + b"c" * 20
    # Offsets stay global logical bytes regardless of segmentation.
    assert store.read(8, 4) == b"aabb"


def test_view_zero_copy_within_segment():
    store = make(segment_bytes=16)
    store.append(b"0123456789abcdef")
    view = store.view(4, 8)
    assert isinstance(view, memoryview)
    # Aliases the segment buffer: a poke shows through.
    store._segments[0][4] = ord("X")
    assert bytes(view) == b"X56789ab"
    del view


def test_view_straddling_boundary_is_stitched_copy():
    store = make(segment_bytes=16)
    store.append(b"a" * 16 + b"b" * 16)
    view = store.view(12, 8)
    assert bytes(view) == b"aaaabbbb"
    # A stitched view is private: segment mutations do not show through.
    store._segments[0][12] = ord("X")
    assert bytes(view) == b"aaaabbbb"


def test_contiguous_end_walks_segment_spans():
    store = make(segment_bytes=16)
    store.append(b"x" * 40)
    assert store.contiguous_end(0) == 16
    assert store.contiguous_end(15) == 16
    assert store.contiguous_end(16) == 32
    assert store.contiguous_end(33) == 40  # store end, not the boundary


def test_truncate_recycles_whole_segments_only():
    store = make(segment_bytes=16)
    store.append(b"x" * 48)
    store.mark_durable(48)
    # Floor inside segment 1: only segment 0 is wholly below it.
    assert store.truncate(20) == 1
    assert store.truncate_lsn == 20
    assert store.segment_count == 2
    assert store.truncated_bytes == 20
    assert store.recycled_segments == 1
    # Bytes at and above the floor stay readable, even in segment 1.
    assert store.read(20, 4) == b"xxxx"


def test_truncate_is_monotone_noop_backwards():
    store = make(segment_bytes=16)
    store.append(b"x" * 32)
    store.mark_durable(32)
    store.truncate(20)
    assert store.truncate(10) == 0
    assert store.truncate_lsn == 20
    assert store.truncated_bytes == 20


def test_truncate_rejects_volatile_space():
    store = make(segment_bytes=16)
    store.append(b"x" * 32)
    store.mark_durable(16)
    with pytest.raises(StableStoreError):
        store.truncate(20)


def test_reads_below_floor_raise():
    store = make(segment_bytes=16)
    store.append(b"x" * 48)
    store.mark_durable(48)
    store.truncate(32)
    for fn in (store.read, store.view):
        with pytest.raises(LogTruncatedError):
            fn(0, 4)
        with pytest.raises(LogTruncatedError):
            fn(31, 2)  # starts below the floor, ends above
    with pytest.raises(LogTruncatedError):
        store.read_durable(16, 4)
    assert store.read(32, 4) == b"xxxx"


def test_floor_at_exact_segment_boundary():
    store = make(segment_bytes=16)
    store.append(b"x" * 48)
    store.mark_durable(48)
    assert store.truncate(32) == 2
    assert store.segment_count == 1
    assert store.live_bytes == 16


def test_truncate_everything_durable():
    store = make(segment_bytes=16)
    store.append(b"x" * 32)
    store.mark_durable(32)
    assert store.truncate(32) == 2
    assert store.live_bytes == 0
    # Appends continue from the same logical offset into a new segment.
    assert store.append(b"yyyy") == 32
    assert store.read(32, 4) == b"yyyy"


def test_crash_preserves_floor_and_recycling_counters():
    store = make(segment_bytes=16)
    store.append(b"x" * 48)
    store.mark_durable(32)
    store.truncate(20)
    store.crash()
    assert store.truncate_lsn == 20
    assert store.truncated_bytes == 20
    assert store.recycled_segments == 1
    assert store.end == 32  # volatile tail gone
    with pytest.raises(LogTruncatedError):
        store.read(0, 4)
    assert store.read(20, 4) == b"xxxx"


def test_crash_trims_tail_segment_in_place():
    store = make(segment_bytes=16)
    store.append(b"x" * 20)
    store.mark_durable(18)
    store.crash()
    assert store.end == 18
    assert store.segment_count == 2
    assert len(store._segments[1]) == 2
    store.append(b"yy")
    assert store.read(16, 4) == b"xxyy"


def test_live_bytes_tracks_retained_segments():
    store = make(segment_bytes=16)
    store.append(b"x" * 40)
    assert store.live_bytes == 40
    store.mark_durable(40)
    store.truncate(33)
    assert store.live_bytes == 8  # segments 0 and 1 recycled


def test_invalid_segment_size_rejected():
    with pytest.raises(StableStoreError):
        StableStore(segment_bytes=0)
