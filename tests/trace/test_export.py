"""Tests for the JSONL and Chrome trace_event exporters and validators."""

import json

from repro.sim import Simulator
from repro.trace import (
    JSONL_SCHEMA,
    Tracer,
    chrome_trace,
    jsonl_lines,
    validate_chrome_trace,
    validate_jsonl_lines,
    write_chrome_trace,
    write_jsonl,
)


def _sleep(ms):
    yield ms


def traced_run():
    sim = Simulator()
    tracer = Tracer(sim).attach()
    span = tracer.span("flush.distributed", owner="msp1", legs=2)
    p = sim.spawn(_sleep(4.0))
    sim.run_until_process(p, limit=10)
    tracer.instant("msp.crash", owner="msp2", epoch=1)
    span.end(outcome="ok")
    return tracer


def test_jsonl_round_trip_is_valid():
    tracer = traced_run()
    lines = list(jsonl_lines(tracer))
    assert validate_jsonl_lines(lines) == []
    header = json.loads(lines[0])
    assert header["schema"] == JSONL_SCHEMA
    assert header["clock"] == "sim-ms"
    assert header["events"] == 2
    events = [json.loads(line) for line in lines[1:]]
    assert {e["name"] for e in events} == {"flush.distributed", "msp.crash"}


def test_chrome_export_is_loadable():
    tracer = traced_run()
    doc = chrome_trace(tracer)
    assert validate_chrome_trace(doc) == []
    assert doc["displayTimeUnit"] == "ms"
    by_ph = {}
    for event in doc["traceEvents"]:
        by_ph.setdefault(event["ph"], []).append(event)
    # One thread_name metadata event per owner lane.
    assert {m["args"]["name"] for m in by_ph["M"]} == {"msp1", "msp2"}
    (span,) = by_ph["X"]
    assert span["ts"] == 0.0
    assert span["dur"] == 4000.0  # 4 sim-ms in microseconds
    (instant,) = by_ph["i"]
    assert instant["s"] == "t"
    # Distinct owners land in distinct lanes under one process.
    assert span["pid"] == instant["pid"] == 1
    assert span["tid"] != instant["tid"]


def test_writers_produce_checkable_files(tmp_path):
    tracer = traced_run()
    chrome_path = tmp_path / "t.json"
    jsonl_path = tmp_path / "t.jsonl"
    write_chrome_trace(tracer, str(chrome_path))
    write_jsonl(tracer, str(jsonl_path))
    assert validate_chrome_trace(json.loads(chrome_path.read_text())) == []
    assert validate_jsonl_lines(jsonl_path.read_text().splitlines()) == []


def test_jsonl_validator_rejects_bad_artifacts():
    assert validate_jsonl_lines([]) == ["empty file"]
    assert any(
        "not JSON" in p for p in validate_jsonl_lines(["{nope"])
    )
    header = json.dumps({"schema": "other", "clock": "sim-ms", "events": 0})
    assert any("schema" in p for p in validate_jsonl_lines([header]))
    good_header = json.dumps(
        {"schema": JSONL_SCHEMA, "clock": "sim-ms", "events": 1}
    )
    problems = validate_jsonl_lines(
        [good_header, json.dumps({"name": "x", "ph": "Z", "ts": 0})]
    )
    assert any("unknown phase" in p for p in problems)
    problems = validate_jsonl_lines(
        [good_header, json.dumps({"name": "x", "ph": "X", "ts": -1})]
    )
    assert any("bad ts" in p for p in problems)
    problems = validate_jsonl_lines([good_header, good_header, good_header])
    assert any("declares 1 events" in p for p in problems)


def test_chrome_validator_rejects_bad_documents():
    assert validate_chrome_trace({}) == ["traceEvents is missing or not a list"]
    assert any(
        "empty" in p for p in validate_chrome_trace({"traceEvents": []})
    )
    problems = validate_chrome_trace(
        {"traceEvents": [{"name": "x", "ph": "X", "ts": 0, "pid": 1, "tid": 1}]}
    )
    assert any("without numeric dur" in p for p in problems)
    problems = validate_chrome_trace({"traceEvents": [["not", "an", "object"]]})
    assert any("not an object" in p for p in problems)


def test_validator_output_truncates():
    header = json.dumps({"schema": JSONL_SCHEMA, "clock": "sim-ms", "events": 50})
    bad = ["{nope"] * 50
    problems = validate_jsonl_lines([header] + bad)
    assert problems[-1] == "... (truncated)"
    assert len(problems) <= 21
