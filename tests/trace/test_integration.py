"""End-to-end tracing over the paper workload.

Two contracts: a traced crash run yields the recovery timeline (every
numbered step of ``recover_msp`` as spans, with attribution), and
attaching the tracer does not perturb the seeded simulation — same
outcomes, same message ledger, same simulated clock.
"""

from repro.trace import (
    Tracer,
    collect_component_metrics,
    validate_chrome_trace,
    chrome_trace,
)
from repro.workloads import PaperWorkload, WorkloadParams


def _params(**overrides):
    base = dict(
        configuration="LoOptimistic",
        requests_per_client=40,
        num_clients=1,
        calls_to_sm2=1,
        seed=0,
        crash_every_n=15,
    )
    base.update(overrides)
    return WorkloadParams(**base)


def _run(traced):
    workload = PaperWorkload(_params())
    tracer = Tracer(workload.sim).attach() if traced else None
    result = workload.run()
    if tracer is not None:
        tracer.finalize()
    return workload, result, tracer


def test_crash_run_emits_recovery_timeline():
    workload, result, tracer = _run(traced=True)
    assert result.crashes >= 1
    names = {event.name for event in tracer.events}
    # The crash itself, then every numbered recovery step (§4.3).
    assert "msp.crash" in names
    for step in (
        "recovery",
        "recovery.anchor",
        "recovery.scan",
        "recovery.analyze",
        "recovery.checkpoint",
    ):
        assert step in names, f"missing span {step}"
    # Request lifecycle and flush legs with owner attribution.
    spans = [e for e in tracer.events if e.ph == "X"]
    assert any(e.name == "msp.request" and e.owner == "msp1" for e in spans)
    assert any(e.name == "flush.distributed" for e in spans)
    assert any(e.name == "log.write" for e in spans)
    # Phase durations landed in the metrics histograms.
    recovery = tracer.metrics.histograms["span.recovery_ms"]
    assert recovery.count == result.crashes
    assert tracer.metrics.histograms["recovery.total_ms"].count == result.crashes
    # Finalize left nothing open, and the export is loadable.
    assert tracer.open_spans() == []
    assert validate_chrome_trace(chrome_trace(tracer)) == []


def test_tracing_does_not_change_the_simulation():
    workload_plain, plain, _ = _run(traced=False)
    workload_traced, traced, _ = _run(traced=True)
    assert traced.completed_requests == plain.completed_requests
    assert traced.crashes == plain.crashes
    assert traced.mean_response_ms == plain.mean_response_ms
    assert workload_traced.sim.now == workload_plain.sim.now
    assert workload_traced.network.ledger() == workload_plain.network.ledger()


def test_collect_component_metrics_folds_counters():
    workload, result, tracer = _run(traced=True)
    registry = collect_component_metrics(
        tracer.metrics,
        msps=(workload.msp1, workload.msp2),
        network=workload.network,
    )
    counters = registry.to_dict()["counters"]
    assert counters["msp.msp2.crashes"] == result.crashes
    assert counters["net.messages_sent"] == workload.network.messages_sent
    assert counters["log.msp1.flush_requests"] > 0
    assert "flush.stale_acks" in counters
    ledger = workload.network.ledger()
    assert (
        counters["net.messages_sent"] + counters["net.messages_duplicated"]
        == counters["net.messages_delivered"]
        + counters["net.messages_dropped"]
        + counters["net.messages_in_flight"]
    )
    assert counters["net.messages_dropped"] == ledger["messages_dropped"]
