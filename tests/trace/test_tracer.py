"""Unit tests for the sim-time tracer and the metrics registry."""

from repro.sim import Simulator
from repro.trace import Counter, Histogram, MetricsRegistry, Tracer


def make_tracer(**kwargs):
    sim = Simulator()
    return sim, Tracer(sim, **kwargs).attach()


def _sleep(ms):
    yield ms


def advance(sim, ms):
    p = sim.spawn(_sleep(ms))
    sim.run_until_process(p, limit=10)


def test_attach_installs_on_simulator():
    sim = Simulator()
    assert sim.tracer is None
    tracer = Tracer(sim).attach()
    assert sim.tracer is tracer


def test_instant_records_current_sim_time():
    sim, tracer = make_tracer()
    advance(sim, 2.5)
    tracer.instant("mark", owner="msp1", detail=7)
    (event,) = tracer.events
    assert event.ph == "i"
    assert event.ts == 2.5
    assert event.owner == "msp1"
    assert event.args == {"detail": 7}


def test_span_measures_sim_duration_and_feeds_histogram():
    sim, tracer = make_tracer()
    span = tracer.span("work", owner="msp1", lsn=42)
    advance(sim, 3.0)
    span.end(outcome="ok")
    (event,) = tracer.events
    assert event.ph == "X"
    assert event.ts == 0.0
    assert event.dur == 3.0
    assert event.args == {"lsn": 42, "outcome": "ok"}
    hist = tracer.metrics.histograms["span.work_ms"]
    assert hist.count == 1
    assert hist.total == 3.0


def test_span_end_is_idempotent():
    sim, tracer = make_tracer()
    span = tracer.span("work")
    span.end(outcome="ok")
    advance(sim, 5.0)
    span.end(outcome="late")  # must not re-emit or overwrite
    (event,) = tracer.events
    assert event.dur == 0.0
    assert event.args == {"outcome": "ok"}


def test_finalize_closes_open_spans_as_truncated():
    sim, tracer = make_tracer()
    span = tracer.span("interrupted", owner="msp2")
    advance(sim, 1.0)
    assert tracer.open_spans() == [span]
    tracer.finalize()
    assert tracer.open_spans() == []
    (event,) = tracer.events
    assert event.args["truncated"] is True
    assert event.dur == 1.0


def test_max_events_bounds_the_list_and_counts_drops():
    sim, tracer = make_tracer(max_events=3)
    for i in range(5):
        tracer.instant(f"e{i}")
    assert len(tracer.events) == 3
    assert tracer.dropped_events == 2
    assert tracer.summary()["dropped_events"] == 2


def test_summary_counts_events_by_name():
    sim, tracer = make_tracer()
    tracer.instant("a")
    tracer.instant("a")
    tracer.span("b").end()
    summary = tracer.summary()
    assert summary["events"] == 3
    assert summary["events_by_name"] == {"a": 2, "b": 1}
    assert summary["open_spans"] == 0


def test_counter_and_registry():
    registry = MetricsRegistry()
    registry.inc("flush.stale_acks")
    registry.inc("flush.stale_acks", 2)
    assert registry.counters["flush.stale_acks"].value == 3
    registry.set("net.in_flight", 5)
    assert registry.counters["net.in_flight"].value == 5
    assert isinstance(registry.counter("flush.stale_acks"), Counter)


def test_histogram_quantiles_and_dict():
    hist = Histogram("lat", bounds=(1.0, 10.0, 100.0))
    for value in (0.5, 5.0, 50.0, 500.0):
        hist.observe(value)
    assert hist.count == 4
    assert hist.min == 0.5
    assert hist.max == 500.0
    assert hist.mean == sum((0.5, 5.0, 50.0, 500.0)) / 4
    # Quantile estimates quote the bucket upper bound.
    assert hist.quantile(0.25) == 1.0
    assert hist.quantile(0.5) == 10.0
    data = hist.to_dict()
    assert data["count"] == 4
    assert data["p50"] == 10.0


def test_empty_histogram_is_safe():
    hist = Histogram("empty")
    assert hist.mean == 0.0
    assert hist.quantile(0.99) == 0.0
    assert hist.to_dict()["count"] == 0


def test_disabled_tracer_leaves_simulator_untouched():
    # The contract every instrumentation site relies on: a fresh
    # simulator has tracer None, so the guard branch costs one load.
    sim = Simulator()
    assert sim.tracer is None
