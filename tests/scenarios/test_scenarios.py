"""Scenario-matrix grammar, execution and report determinism."""

import importlib.util
import pathlib

import pytest

from repro.scenarios import (
    DEFAULT_MATRIX,
    ScenarioSpec,
    build_report,
    render_html,
    render_markdown,
    run_matrix,
)

REPO = pathlib.Path(__file__).resolve().parents[2]

_spec = importlib.util.spec_from_file_location(
    "perf_gate", REPO / "scripts" / "perf_gate.py"
)
perf_gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(perf_gate)


TINY = {
    "name": "tiny",
    "base": {"sessions": 10, "duration_ms": 1200.0},
    "seeds": [3],
    "topologies": [
        {"name": "single", "msps": 1, "domains": 1, "shards": 1,
         "chain_depth": 0},
        {"name": "fleet", "msps": 4, "domains": 2, "shards": 2,
         "chain_depth": 1},
    ],
    "faults": [
        {"name": "calm", "family": "none"},
        {"name": "crash", "family": "crash", "at_ms": 500.0, "targets": [0]},
        {"name": "rack", "family": "correlated", "at_ms": 500.0,
         "targets": [0, 2]},
        {"name": "split", "family": "partition", "start_ms": 400.0,
         "end_ms": 800.0},
        {"name": "site", "family": "disaster", "at_ms": 450.0, "domain": 0},
    ],
}


# -- grammar ---------------------------------------------------------------


def test_validation_rejects_bad_matrices():
    with pytest.raises(ValueError, match="unknown fault family"):
        ScenarioSpec.from_dict(
            {"topologies": TINY["topologies"],
             "faults": [{"name": "x", "family": "meteor"}]}
        )
    with pytest.raises(ValueError, match="at least one topology"):
        ScenarioSpec.from_dict({"faults": TINY["faults"]})
    with pytest.raises(ValueError, match="unknown FleetSpec fields"):
        ScenarioSpec.from_dict(
            {"base": {"warp_speed": 9},
             "topologies": TINY["topologies"], "faults": TINY["faults"]}
        )
    with pytest.raises(ValueError, match="unknown matrix keys"):
        ScenarioSpec.from_dict({"fault": []})


def test_expansion_covers_the_full_product():
    spec = ScenarioSpec.from_dict(TINY)
    cells = spec.expand()
    # 2 topologies x 5 faults x 1 seed, plus one cold baseline per
    # disaster cell.
    assert len(cells) == 2 * 5 + 2
    ids = [c.cell_id for c in cells]
    assert len(ids) == len(set(ids))
    baselines = [c for c in cells if c.baseline_of]
    assert {b.baseline_of for b in baselines} == {
        "single/site/s3", "fleet/site/s3"
    }
    for baseline in baselines:
        warm = next(c for c in cells if c.cell_id == baseline.baseline_of)
        assert warm.fleet.warm_standby and warm.fleet.disaster_plan
        assert not baseline.fleet.warm_standby
        # The baseline crashes exactly the MSPs the disaster destroys,
        # at the same instant.
        assert baseline.fleet.crash_plan
        assert {t for t, _m in baseline.fleet.crash_plan} == {
            warm.fleet.disaster_plan[0][0]
        }


def test_partition_sides_adapt_to_the_topology():
    spec = ScenarioSpec.from_dict(TINY)
    by_id = {c.cell_id: c for c in spec.expand()}
    single = by_id["single/split/s3"].fleet.partition_plan[0]
    assert set(single[2]) == {"m000"}
    assert set(single[3]) == {"c.m000"}
    fleet = by_id["fleet/split/s3"].fleet.partition_plan[0]
    assert set(fleet[2]) == {"m000", "m002", "c.m000", "c.m002"}
    assert set(fleet[3]) == {"m001", "m003", "c.m001", "c.m003"}


def test_correlated_targets_reduce_modulo_msp_count():
    spec = ScenarioSpec.from_dict(TINY)
    by_id = {c.cell_id: c for c in spec.expand()}
    # On the single topology both targets collapse to m000: one entry.
    assert by_id["single/rack/s3"].fleet.crash_plan == ((500.0, "m000"),)
    assert by_id["fleet/rack/s3"].fleet.crash_plan == (
        (500.0, "m000"), (500.0, "m002"),
    )


def test_default_matrix_is_valid_and_spans_the_families():
    spec = ScenarioSpec.from_dict(DEFAULT_MATRIX)
    cells = spec.expand()
    families = {c.family for c in cells if not c.family.endswith("-baseline")}
    assert families == {"none", "crash", "correlated", "partition", "disaster"}
    assert {c.topology for c in cells} == {"single", "fleet"}


def test_committed_matrices_parse_and_expand():
    for name in ("default.yaml", "smoke.yaml"):
        spec = ScenarioSpec.load(str(REPO / "scenarios" / name))
        cells = spec.expand()
        families = {
            c.family for c in cells if not c.family.endswith("-baseline")
        }
        assert len(families) >= 4, name


# -- execution -------------------------------------------------------------


def run_tiny(jobs):
    return run_matrix(ScenarioSpec.from_dict(TINY), jobs=jobs)


def test_matrix_runs_clean_and_is_jobs_invariant():
    report = run_tiny(jobs=1)
    assert report["verdicts"]["all_clean"], report["failing_cells"]
    assert report["verdicts"]["failover_beats_cold"], (
        report["failover_vs_cold"]
    )
    again = run_tiny(jobs=2)
    assert again["fingerprint"] == report["fingerprint"]
    assert render_markdown(again) == render_markdown(report)
    assert render_html(again) == render_html(report)
    # The scenario gate accepts a clean matrix.
    assert perf_gate.gate_scenarios(report, min_families=4) == []


def test_report_aggregates_recovery_and_coverage():
    report = run_tiny(jobs=2)
    # Every cell checked every fleet invariant.
    for slot in report["invariants"].values():
        assert slot["checked"] == len(report["cells"])
    # Recovery samples exist for each faulting family.
    for family in ("crash", "correlated", "disaster", "disaster-baseline"):
        assert report["family_recovery_ms"][family]["n"] > 0, family
    # Each disaster msp has a paired, faster cold-restart sample.
    assert report["failover_vs_cold"]
    for check in report["failover_vs_cold"]:
        assert check["cold_restart_ms"] is not None
        assert check["faster"]
    markdown = render_markdown(report)
    assert "Recovery-time distribution" in markdown
    assert "failover" in markdown


def test_gate_rejects_unclean_and_slow_failover():
    report = run_tiny(jobs=1)
    # Tamper: one cell unclean.
    broken = {**report, "failing_cells": [report["cells"][0]["cell"]]}
    assert any(
        "unclean" in p for p in perf_gate.gate_scenarios(broken, 4)
    )
    # Tamper: failover slower than the cold restart.
    slow = {
        **report,
        "failover_vs_cold": [
            {**c, "faster": False} for c in report["failover_vs_cold"]
        ],
    }
    assert any(
        "did not beat" in p for p in perf_gate.gate_scenarios(slow, 4)
    )
    assert any(
        "families" in p for p in perf_gate.gate_scenarios(report, 7)
    )


def test_build_report_is_a_pure_function_of_records():
    spec = ScenarioSpec.from_dict(TINY)
    report = run_matrix(spec, jobs=2)
    rebuilt = build_report(spec, report["cells"])
    assert rebuilt["fingerprint"] == report["fingerprint"]
