"""Frame encoding/scanning tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.wire import CorruptRecordError, FrameReader, frame, unframe
from repro.wire.framing import framed_size


def test_frame_unframe_roundtrip():
    data = frame(b"payload")
    payload, end = unframe(data)
    assert payload == b"payload"
    assert end == len(data)


def test_framed_size():
    assert len(frame(b"abc")) == framed_size(3)


def test_unframe_truncated_header():
    payload, end = unframe(b"\x01\x02")
    assert payload is None
    assert end == 0


def test_unframe_truncated_body():
    data = frame(b"longpayload")[:-3]
    payload, end = unframe(data)
    assert payload is None


def test_unframe_corrupt_checksum_raises():
    """A *complete* frame with a flipped payload bit is corruption, not
    end-of-log: the durable prefix is supposed to be crash-proof."""
    data = bytearray(frame(b"payload"))
    data[-1] ^= 0xFF
    with pytest.raises(CorruptRecordError):
        unframe(bytes(data))


def test_unframe_corrupt_header_crc_raises():
    data = bytearray(frame(b"payload"))
    data[4] ^= 0x01  # flip a bit in the stored crc, payload intact
    with pytest.raises(CorruptRecordError):
        unframe(bytes(data))


def test_unframe_zero_copy_view():
    """Handed a memoryview, unframe returns a sub-view (no copy)."""
    blob = frame(b"zero-copy payload")
    view = memoryview(blob)
    payload, end = unframe(view)
    assert isinstance(payload, memoryview)
    assert payload == b"zero-copy payload"
    assert end == len(blob)


def test_reader_iterates_all_frames():
    blob = frame(b"one") + frame(b"two") + frame(b"three")
    frames = list(FrameReader(blob))
    assert [p for _, p in frames] == [b"one", b"two", b"three"]
    offsets = [o for o, _ in frames]
    assert offsets[0] == 0
    assert offsets == sorted(offsets)


def test_reader_stops_at_torn_tail():
    blob = frame(b"good") + frame(b"torn")[:-2]
    frames = list(FrameReader(blob))
    assert [p for _, p in frames] == [b"good"]


def test_reader_from_offset():
    first = frame(b"skip")
    blob = first + frame(b"read")
    frames = list(FrameReader(blob, start=len(first)))
    assert [p for _, p in frames] == [b"read"]


@given(st.lists(st.binary(max_size=100), max_size=30))
def test_reader_roundtrip_property(payloads):
    blob = b"".join(frame(p) for p in payloads)
    frames = list(FrameReader(blob))
    assert [p for _, p in frames] == payloads


@given(st.lists(st.binary(max_size=50), min_size=1, max_size=10), st.integers(1, 20))
def test_truncation_never_yields_garbage(payloads, cut):
    """Any truncation of a valid log yields only a prefix of the frames."""
    blob = b"".join(frame(p) for p in payloads)
    truncated = blob[: max(0, len(blob) - cut)]
    frames = [p for _, p in FrameReader(truncated)]
    assert frames == payloads[: len(frames)]
