"""Codec round-trip tests, including hypothesis property tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.wire import Decoder, Encoder
from repro.wire.codec import CodecError


def test_uint_roundtrip_basic():
    data = Encoder().uint(0).uint(1).uint(127).uint(128).uint(300).finish()
    dec = Decoder(data)
    assert [dec.uint() for _ in range(5)] == [0, 1, 127, 128, 300]
    dec.expect_end()


def test_uint_rejects_negative():
    with pytest.raises(ValueError):
        Encoder().uint(-1)


def test_sint_roundtrip_basic():
    values = [0, -1, 1, -2, 2, -(2**40), 2**40]
    data = Encoder()
    for v in values:
        data.sint(v)
    dec = Decoder(data.finish())
    assert [dec.sint() for _ in values] == values


def test_text_and_raw_roundtrip():
    data = Encoder().text("héllo").raw(b"\x00\xff").finish()
    dec = Decoder(data)
    assert dec.text() == "héllo"
    assert dec.raw() == b"\x00\xff"
    dec.expect_end()


def test_boolean_roundtrip():
    data = Encoder().boolean(True).boolean(False).finish()
    dec = Decoder(data)
    assert dec.boolean() is True
    assert dec.boolean() is False


def test_boolean_bad_value():
    data = Encoder().uint(7).finish()
    with pytest.raises(CodecError):
        Decoder(data).boolean()


def test_float64_roundtrip():
    data = Encoder().float64(3.14159).float64(-0.0).finish()
    dec = Decoder(data)
    assert dec.float64() == 3.14159
    assert dec.float64() == -0.0


def test_seq_roundtrip():
    items = [(1, "a"), (2, "b")]
    data = (
        Encoder()
        .seq(items, lambda e, it: e.uint(it[0]).text(it[1]))
        .finish()
    )
    result = Decoder(data).seq(lambda d: (d.uint(), d.text()))
    assert result == items


def test_truncated_varint():
    with pytest.raises(CodecError):
        Decoder(b"\x80").uint()


def test_truncated_bytes():
    data = Encoder().uint(10).finish() + b"abc"
    with pytest.raises(CodecError):
        Decoder(data).raw()


def test_expect_end_catches_trailing():
    data = Encoder().uint(1).uint(2).finish()
    dec = Decoder(data)
    dec.uint()
    with pytest.raises(CodecError):
        dec.expect_end()


@given(st.lists(st.integers(min_value=0, max_value=2**63)))
def test_uint_roundtrip_property(values):
    enc = Encoder()
    for v in values:
        enc.uint(v)
    dec = Decoder(enc.finish())
    assert [dec.uint() for _ in values] == values
    dec.expect_end()


@given(st.lists(st.integers(min_value=-(2**62), max_value=2**62)))
def test_sint_roundtrip_property(values):
    enc = Encoder()
    for v in values:
        enc.sint(v)
    dec = Decoder(enc.finish())
    assert [dec.sint() for _ in values] == values


@given(st.lists(st.binary(max_size=200)))
def test_raw_roundtrip_property(blobs):
    enc = Encoder()
    for b in blobs:
        enc.raw(b)
    dec = Decoder(enc.finish())
    assert [dec.raw() for _ in blobs] == blobs


@given(st.lists(st.text(max_size=50)))
def test_text_roundtrip_property(texts):
    enc = Encoder()
    for t in texts:
        enc.text(t)
    dec = Decoder(enc.finish())
    assert [dec.text() for _ in texts] == texts


@given(st.floats(allow_nan=False))
def test_float_roundtrip_property(value):
    data = Encoder().float64(value).finish()
    assert Decoder(data).float64() == value


@given(
    st.lists(
        st.one_of(
            st.integers(min_value=0, max_value=2**30).map(lambda v: ("uint", v)),
            st.text(max_size=20).map(lambda v: ("text", v)),
            st.binary(max_size=20).map(lambda v: ("raw", v)),
            st.booleans().map(lambda v: ("bool", v)),
        )
    )
)
def test_mixed_field_roundtrip_property(fields):
    enc = Encoder()
    for kind, value in fields:
        getattr(enc, {"uint": "uint", "text": "text", "raw": "raw", "bool": "boolean"}[kind])(value)
    dec = Decoder(enc.finish())
    for kind, value in fields:
        read = {"uint": dec.uint, "text": dec.text, "raw": dec.raw, "bool": dec.boolean}[kind]()
        assert read == value
    dec.expect_end()
