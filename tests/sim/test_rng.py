"""Tests for named deterministic random streams."""

from repro.sim import RngRegistry


def test_same_name_same_stream_object():
    registry = RngRegistry(1)
    assert registry.stream("disk") is registry.stream("disk")


def test_streams_reproducible_across_registries():
    a = RngRegistry(7).stream("disk.msp1")
    b = RngRegistry(7).stream("disk.msp1")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_independent():
    registry = RngRegistry(7)
    a = registry.stream("disk.msp1")
    b = registry.stream("disk.msp2")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_seeds_differ():
    a = RngRegistry(1).stream("x")
    b = RngRegistry(2).stream("x")
    assert a.random() != b.random()


def test_stream_isolation_from_creation_order():
    """Drawing from one stream never perturbs another."""
    r1 = RngRegistry(3)
    first = r1.stream("a")
    _ = [first.random() for _ in range(100)]
    value_after_draws = r1.stream("b").random()

    r2 = RngRegistry(3)
    value_fresh = r2.stream("b").random()
    assert value_after_draws == value_fresh
