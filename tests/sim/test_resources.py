"""Unit tests for Resource, Store and RWLock."""

import pytest

from repro.sim import Resource, RWLock, Simulator, Store, StoreClosed


def test_resource_serializes_access():
    sim = Simulator()
    disk = Resource(sim, capacity=1, name="disk")
    done = []

    def job(i):
        yield from disk.acquire()
        try:
            yield 10.0
        finally:
            disk.release()
        done.append((i, sim.now))

    for i in range(3):
        sim.spawn(job(i))
    sim.run()
    assert done == [(0, 10.0), (1, 20.0), (2, 30.0)]


def test_resource_capacity_two_overlaps():
    sim = Simulator()
    cpu = Resource(sim, capacity=2, name="cpu")
    done = []

    def job(i):
        yield from cpu.acquire()
        try:
            yield 10.0
        finally:
            cpu.release()
        done.append((i, sim.now))

    for i in range(4):
        sim.spawn(job(i))
    sim.run()
    assert done == [(0, 10.0), (1, 10.0), (2, 20.0), (3, 20.0)]


def test_resource_fifo_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def job(i, start_delay):
        yield start_delay
        yield from res.acquire()
        try:
            order.append(i)
            yield 5.0
        finally:
            res.release()

    sim.spawn(job("a", 0.0))
    sim.spawn(job("b", 1.0))
    sim.spawn(job("c", 2.0))
    sim.run()
    assert order == ["a", "b", "c"]


def test_resource_killed_waiter_skipped():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    served = []

    def holder():
        yield from res.acquire()
        try:
            yield 10.0
        finally:
            res.release()

    def waiter(i):
        yield from res.acquire()
        try:
            served.append(i)
            yield 1.0
        finally:
            res.release()

    sim.spawn(holder())
    victim = sim.spawn(waiter("victim"))
    sim.spawn(waiter("other"))

    def killer():
        yield 5.0
        victim.kill()

    sim.spawn(killer())
    sim.run()
    assert served == ["other"]


def test_resource_utilization_tracking():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def job():
        yield from res.acquire()
        try:
            yield 30.0
        finally:
            res.release()
        yield 70.0

    sim.run_process(job())
    assert res.utilization() == pytest.approx(0.3)


def test_resource_release_unheld_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(Exception):
        res.release()


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")

    def getter():
        item = yield from store.get()
        return item

    assert sim.run_process(getter()) == "x"


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)

    def getter():
        item = yield from store.get()
        return item, sim.now

    def putter():
        yield 7.0
        store.put("late")

    p = sim.spawn(getter())
    sim.spawn(putter())
    sim.run()
    assert p.result == ("late", 7.0)


def test_store_fifo_items_and_getters():
    sim = Simulator()
    store = Store(sim)
    got = []

    def getter(i):
        item = yield from store.get()
        got.append((i, item))

    sim.spawn(getter(0))
    sim.spawn(getter(1))

    def putter():
        yield 1.0
        store.put("a")
        store.put("b")

    sim.spawn(putter())
    sim.run()
    assert got == [(0, "a"), (1, "b")]


def test_store_close_fails_getters():
    sim = Simulator()
    store = Store(sim)

    def getter():
        try:
            yield from store.get()
        except StoreClosed:
            return "closed"

    def closer():
        yield 1.0
        store.close()

    p = sim.spawn(getter())
    sim.spawn(closer())
    sim.run()
    assert p.result == "closed"


def test_store_drain():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    assert store.drain() == [1, 2]
    assert len(store) == 0


def test_rwlock_readers_share():
    sim = Simulator()
    lock = RWLock(sim)
    done = []

    def reader(i):
        yield from lock.acquire_read()
        try:
            yield 10.0
        finally:
            lock.release_read()
        done.append((i, sim.now))

    for i in range(3):
        sim.spawn(reader(i))
    sim.run()
    assert done == [(0, 10.0), (1, 10.0), (2, 10.0)]


def test_rwlock_writer_excludes_readers():
    sim = Simulator()
    lock = RWLock(sim)
    trace = []

    def writer():
        yield from lock.acquire_write()
        try:
            trace.append(("w-start", sim.now))
            yield 10.0
            trace.append(("w-end", sim.now))
        finally:
            lock.release_write()

    def reader():
        yield 1.0
        yield from lock.acquire_read()
        try:
            trace.append(("r-start", sim.now))
            yield 5.0
        finally:
            lock.release_read()

    sim.spawn(writer())
    sim.spawn(reader())
    sim.run()
    assert trace == [("w-start", 0.0), ("w-end", 10.0), ("r-start", 10.0)]


def test_rwlock_writer_not_starved():
    """A writer queued behind readers runs before readers that arrive later."""
    sim = Simulator()
    lock = RWLock(sim)
    order = []

    def reader(name, delay, hold):
        yield delay
        yield from lock.acquire_read()
        try:
            order.append(name)
            yield hold
        finally:
            lock.release_read()

    def writer(name, delay):
        yield delay
        yield from lock.acquire_write()
        try:
            order.append(name)
            yield 1.0
        finally:
            lock.release_write()

    sim.spawn(reader("r1", 0.0, 10.0))
    sim.spawn(writer("w", 1.0))
    sim.spawn(reader("r2", 2.0, 1.0))
    sim.run()
    assert order == ["r1", "w", "r2"]
