"""Kill-safety: killed processes must not leak grants, locks or items.

A process can be killed (crash injection) at *any* suspension point —
including the narrow window after a resource grant / item delivery was
triggered for it but before it resumed.  Leaking that grant deadlocks
every future acquirer; this is exactly how a second crash during MSP
recovery once wedged the disk forever.
"""

import pytest

from repro.sim import Resource, RWLock, Simulator, Store


def test_resource_grant_to_killed_waiter_is_handed_on():
    sim = Simulator()
    res = Resource(sim, capacity=1, name="disk")
    served = []

    def holder():
        yield from res.acquire()
        try:
            yield 10.0
        finally:
            res.release()

    def waiter(name):
        yield from res.acquire()
        try:
            served.append(name)
            yield 1.0
        finally:
            res.release()

    sim.spawn(holder())
    victim = sim.spawn(waiter("victim"))
    sim.spawn(waiter("survivor"))

    # Kill the victim exactly when the holder releases (t=10): the grant
    # event fires at 10 and the victim dies at 10 before consuming it.
    def killer():
        yield 10.0
        victim.kill()

    sim.spawn(killer())
    sim.run()
    assert served == ["survivor"]
    assert res.in_use == 0


def test_resource_not_leaked_under_mass_kill():
    """Kill a whole group at a moment of heavy contention; the resource
    must end up free."""
    from repro.sim import ProcessGroup

    sim = Simulator()
    res = Resource(sim, capacity=2)
    group = ProcessGroup("msp")

    def worker():
        while True:
            yield from res.acquire()
            try:
                yield 3.0
            finally:
                res.release()
            yield 1.0

    for _ in range(8):
        sim.spawn(worker(), group=group)

    def crash():
        yield 10.0
        group.kill_all()

    sim.spawn(crash())
    sim.run(until=50.0)
    assert res.in_use == 0

    # A fresh acquirer succeeds immediately.
    done = []

    def probe():
        yield from res.acquire()
        try:
            done.append(sim.now)
        finally:
            res.release()

    sim.spawn(probe())
    sim.run(until=60.0)
    assert done


def test_rwlock_write_grant_to_killed_waiter():
    sim = Simulator()
    lock = RWLock(sim)
    served = []

    def reader():
        yield from lock.acquire_read()
        try:
            yield 10.0
        finally:
            lock.release_read()

    def writer(name):
        yield from lock.acquire_write()
        try:
            served.append(name)
            yield 1.0
        finally:
            lock.release_write()

    sim.spawn(reader())
    victim = sim.spawn(writer("victim"))
    sim.spawn(writer("survivor"))

    def killer():
        yield 10.0
        victim.kill()

    sim.spawn(killer())
    sim.run()
    assert served == ["survivor"]
    # Lock fully free afterwards.
    assert lock._readers == 0 and not lock._writer


def test_rwlock_read_grant_to_killed_waiter():
    sim = Simulator()
    lock = RWLock(sim)
    served = []

    def writer():
        yield from lock.acquire_write()
        try:
            yield 10.0
        finally:
            lock.release_write()

    def reader(name):
        yield from lock.acquire_read()
        try:
            served.append(name)
            yield 1.0
        finally:
            lock.release_read()

    sim.spawn(writer())
    victim = sim.spawn(reader("victim"))

    def killer():
        yield 10.0
        victim.kill()

    sim.spawn(killer())
    sim.run()
    assert lock._readers == 0

    ok = []

    def late_writer():
        yield from lock.acquire_write()
        try:
            ok.append(True)
        finally:
            lock.release_write()

    sim.spawn(late_writer())
    sim.run()
    assert ok


def test_store_item_delivered_to_killed_getter_requeued():
    sim = Simulator()
    store = Store(sim)
    got = []

    def getter(name):
        item = yield from store.get()
        got.append((name, item))

    victim = sim.spawn(getter("victim"))
    survivor = sim.spawn(getter("survivor"))

    def put_and_kill():
        yield 5.0
        store.put("precious")
        victim.kill()  # delivery fired at t=5 but victim never resumes

    sim.spawn(put_and_kill())
    sim.run()
    assert got == [("survivor", "precious")]
    assert len(store) == 0


def test_store_item_requeued_preserves_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def getter(name):
        item = yield from store.get()
        got.append((name, item))

    victim = sim.spawn(getter("victim"))

    def driver():
        yield 5.0
        store.put("a")
        victim.kill()
        store.put("b")
        yield 1.0
        p1 = sim.spawn(getter("late1"))
        p2 = sim.spawn(getter("late2"))
        yield p1
        yield p2

    sim.run_process(driver())
    # "a" was re-queued at the front, so order is preserved.
    assert got == [("late1", "a"), ("late2", "b")]
