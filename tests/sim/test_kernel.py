"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    Event,
    ProcessGroup,
    ProcessKilled,
    SimTimeoutError,
    Simulator,
    first_of,
    wait_with_timeout,
)


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        assert sim.now == 0.0
        yield 5.0
        assert sim.now == 5.0
        yield 2.5
        return sim.now

    assert sim.run_process(proc()) == 7.5


def test_zero_timeout_runs_same_time():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(sim.now)
        yield 0
        trace.append(sim.now)

    sim.run_process(proc())
    assert trace == [0.0, 0.0]


def test_yield_none_relinquishes_control():
    sim = Simulator()
    order = []

    def a():
        order.append("a1")
        yield None
        order.append("a2")

    def b():
        order.append("b1")
        yield None
        order.append("b2")

    sim.spawn(a())
    sim.spawn(b())
    sim.run()
    assert order == ["a1", "b1", "a2", "b2"]


def test_event_wait_receives_value():
    sim = Simulator()
    ev = sim.event()

    def waiter():
        value = yield ev
        return value

    def firer():
        yield 3.0
        ev.trigger("hello")

    p = sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert p.result == "hello"
    assert sim.now == 3.0


def test_event_failure_propagates():
    sim = Simulator()
    ev = sim.event()

    def waiter():
        yield ev

    def firer():
        yield 1.0
        ev.fail(RuntimeError("boom"))

    p = sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    with pytest.raises(RuntimeError, match="boom"):
        _ = p.result


def test_event_double_trigger_is_error():
    sim = Simulator()
    ev = sim.event()
    ev.trigger(1)
    with pytest.raises(Exception):
        ev.trigger(2)


def test_join_process_returns_result():
    sim = Simulator()

    def child():
        yield 4.0
        return 42

    def parent():
        result = yield sim.spawn(child())
        return result

    assert sim.run_process(parent()) == 42


def test_join_failed_process_raises():
    sim = Simulator()

    def child():
        yield 1.0
        raise ValueError("child died")

    def parent():
        yield sim.spawn(child())

    p = sim.spawn(parent())
    sim.run()
    with pytest.raises(ValueError, match="child died"):
        _ = p.result


def test_kill_runs_finally_blocks():
    sim = Simulator()
    cleaned = []

    def proc():
        try:
            yield 100.0
        finally:
            cleaned.append(sim.now)

    p = sim.spawn(proc())

    def killer():
        yield 10.0
        p.kill()

    sim.spawn(killer())
    sim.run()
    assert cleaned == [10.0]
    assert p.killed
    with pytest.raises(ProcessKilled):
        _ = p.result


def test_killed_process_does_not_resume():
    sim = Simulator()
    resumed = []

    def proc():
        yield 5.0
        resumed.append(True)

    p = sim.spawn(proc())

    def killer():
        yield 1.0
        p.kill()

    sim.spawn(killer())
    sim.run()
    assert not resumed


def test_process_group_kill_all():
    sim = Simulator()
    survivors = []

    def worker(i):
        yield 100.0
        survivors.append(i)

    group = ProcessGroup("msp")
    for i in range(5):
        sim.spawn(worker(i), group=group)

    def killer():
        yield 50.0
        group.kill_all()

    sim.spawn(killer())
    sim.run()
    assert survivors == []
    assert len(group) == 0


def test_deterministic_tie_breaking():
    """Two runs with identical structure produce identical traces."""

    def build_and_run():
        sim = Simulator()
        trace = []

        def proc(i):
            yield 1.0
            trace.append((sim.now, i))
            yield 1.0
            trace.append((sim.now, i))

        for i in range(10):
            sim.spawn(proc(i))
        sim.run()
        return trace

    assert build_and_run() == build_and_run()


def test_first_of_returns_winner():
    sim = Simulator()
    e1, e2 = sim.event(), sim.event()

    def waiter():
        index, value = yield first_of(sim, [e1, e2])
        return index, value

    def firer():
        yield 2.0
        e2.trigger("second")
        yield 1.0
        e1.trigger("first")

    p = sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert p.result == (1, "second")


def test_wait_with_timeout_success():
    sim = Simulator()
    ev = sim.event()

    def waiter():
        value = yield from wait_with_timeout(sim, ev, 10.0)
        return value

    def firer():
        yield 5.0
        ev.trigger("ok")

    p = sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert p.result == "ok"


def test_wait_with_timeout_expires():
    sim = Simulator()
    ev = sim.event()

    def waiter():
        try:
            yield from wait_with_timeout(sim, ev, 10.0)
        except SimTimeoutError:
            return "timed out"

    p = sim.spawn(waiter())
    sim.run()
    assert p.result == "timed out"
    assert sim.now == 10.0


def test_run_until_stops_clock():
    sim = Simulator()

    def proc():
        while True:
            yield 10.0

    sim.spawn(proc())
    sim.run(until=35.0)
    assert sim.now == 35.0


def test_call_at_past_raises():
    sim = Simulator()

    def proc():
        yield 10.0

    sim.run_process(proc())
    with pytest.raises(Exception):
        sim.call_at(5.0, lambda: None)


def test_subscribe_after_trigger_fires_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.trigger("early")

    def waiter():
        value = yield ev
        return value

    p = sim.spawn(waiter())
    sim.run()
    assert p.result == "early"
